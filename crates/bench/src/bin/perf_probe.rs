//! Build/estimate throughput probe plus quick maxLevel sanity sweeps.
//!
//! The default probe times the sketch build under *all three* maintenance
//! kernels (scalar oracle, 64-lane batched, 256-lane wide; see
//! `sketch::BuildKernel`) and appends one JSON record per run to
//! `results/perf_probe.json` — the committed `BENCH_*.json` anchors are
//! copies of such records. Every per-kernel record carries the kernel
//! variant, its lane width and its instance-block size so anchors stay
//! self-describing. `--probe estimate` times the *estimation* path the same
//! way under all query kernels (`sketch::QueryKernel`), join and range;
//! `--probe wide` is the quick wide-vs-batched head-to-head (build and
//! estimate, blocked kernels only).
//!
//! Usage: cargo run --release -p spatial-bench --bin perf_probe
//!        [-- --gis | --range | --quick | --probe <estimate|wide>]
//!
//! `--quick` probes only the smallest instance count (fast iteration while
//! touching the hot path).

use rand::SeedableRng;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, BoostShape, BuildKernel, QueryContext, QueryKernel};
use spatial_bench::cli::Args;
use spatial_bench::report::rel_error;
use spatial_bench::runner::{default_threads, shape_for_words};
use std::time::Instant;

/// Milliseconds of repeated calls per timing point (the estimate path is
/// microseconds per call, so each point averages thousands of calls).
const ESTIMATE_PROBE_BUDGET_MS: u128 = 250;

/// `(name, lane_width, block_size)` of a build kernel, recorded with every
/// probe point.
fn build_kernel_meta(kernel: BuildKernel) -> (&'static str, usize, usize) {
    match kernel {
        BuildKernel::Scalar => ("scalar", 1, 1),
        BuildKernel::Batched => ("batched", 64, 64),
        BuildKernel::Wide => ("wide", 256, 256),
    }
}

/// `(name, lane_width, block_size)` of a query kernel.
fn query_kernel_meta(kernel: QueryKernel) -> (&'static str, usize, usize) {
    match kernel {
        QueryKernel::Scalar => ("scalar", 1, 1),
        QueryKernel::Batched => ("batched", 64, 64),
        QueryKernel::Wide => ("wide", 256, 256),
        QueryKernel::Auto => ("auto", 0, 0),
    }
}

/// Times `f` repeatedly until the budget elapses; returns ns per call.
fn time_ns_per_call(mut f: impl FnMut() -> f64) -> f64 {
    // Warm up (context scratch growth, branch predictors).
    let mut sink = 0.0;
    for _ in 0..3 {
        sink += f();
    }
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < ESTIMATE_PROBE_BUDGET_MS {
        for _ in 0..8 {
            sink += f();
        }
        calls += 8;
    }
    let ns = start.elapsed().as_nanos() as f64 / calls as f64;
    assert!(sink.is_finite());
    ns
}

/// Ratio of one kernel's timings over another's (higher = `faster` wins).
#[derive(serde::Serialize)]
struct Speedup {
    faster: String,
    baseline: String,
    /// Baseline ns divided by faster ns, per instance configuration.
    ratio_per_config: Vec<f64>,
}

fn speedups_of(names: &[&'static str], ns_per_kernel: &[Vec<f64>]) -> Vec<Speedup> {
    (1..names.len())
        .map(|i| Speedup {
            faster: names[i].into(),
            baseline: names[i - 1].into(),
            ratio_per_config: ns_per_kernel[i - 1]
                .iter()
                .zip(ns_per_kernel[i].iter())
                .map(|(base, fast)| base / fast)
                .collect(),
        })
        .collect()
}

#[derive(serde::Serialize)]
struct QueryKernelRecord {
    kernel: String,
    lane_width: usize,
    block_size: usize,
    ns_per_estimate: Vec<f64>,
    ns_per_estimate_instance: Vec<f64>,
}

#[derive(serde::Serialize)]
struct EstimateProbeRecord {
    probe: String,
    objects: usize,
    domain_bits: u32,
    instances: Vec<usize>,
    join_kernels: Vec<QueryKernelRecord>,
    /// Adjacent-kernel ratios (e.g. batched over scalar, wide over batched).
    join_speedups: Vec<Speedup>,
    range_kernels: Vec<QueryKernelRecord>,
    range_speedups: Vec<Speedup>,
}

/// Estimation-path throughput under the given query kernels, for the join
/// (counter-product combine) and range (query-side ξ sums) paths, appended
/// to `results/perf_probe.json` like the build probe.
fn estimate_probe(threads: usize, quick: bool, kernels: &[QueryKernel], probe: &str) {
    use rand::Rng as _;
    let bits = 14u32;
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(20_000, bits, 0.0, 5).generate();
    let configs: &[(usize, usize)] = if quick {
        &[(88, 5)]
    } else {
        &[(88, 5), (203, 5), (820, 5)]
    };
    let mut record = EstimateProbeRecord {
        probe: probe.into(),
        objects: data.len(),
        domain_bits: bits,
        instances: configs.iter().map(|&(k1, k2)| k1 * k2).collect(),
        join_kernels: Vec::new(),
        join_speedups: Vec::new(),
        range_kernels: Vec::new(),
        range_speedups: Vec::new(),
    };

    for &kernel in kernels {
        let (name, lane_width, block_size) = query_kernel_meta(kernel);
        let mut join_rec = QueryKernelRecord {
            kernel: name.into(),
            lane_width,
            block_size,
            ns_per_estimate: Vec::new(),
            ns_per_estimate_instance: Vec::new(),
        };
        let mut range_rec = QueryKernelRecord {
            kernel: name.into(),
            lane_width,
            block_size,
            ns_per_estimate: Vec::new(),
            ns_per_estimate_instance: Vec::new(),
        };
        // Fresh RNG per kernel: all kernels see identical schema draws.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(k1, k2) in configs {
            let instances = k1 * k2;
            let join = SpatialJoin::<2>::new(
                &mut rng,
                SketchConfig::new(k1, k2),
                [bits, bits],
                EndpointStrategy::Transform,
            );
            let mut r = join.new_sketch_r();
            let mut s = join.new_sketch_s();
            par_insert_batch(&mut r, &data, threads).unwrap();
            par_insert_batch(&mut s, &data[..10_000], threads).unwrap();
            let mut ctx = QueryContext::new().with_kernel(kernel);
            let ns = time_ns_per_call(|| join.estimate_with(&mut ctx, &r, &s).unwrap().value);
            println!(
                "join   {kernel:?} kernel, instances {instances}: {ns:.0} ns/estimate ({:.2} ns/(est.inst))",
                ns / instances as f64
            );
            join_rec.ns_per_estimate.push(ns);
            join_rec
                .ns_per_estimate_instance
                .push(ns / instances as f64);

            let rq = sketch::RangeQuery::<2>::new(
                &mut rng,
                SketchConfig::new(k1, k2),
                [bits, bits],
                sketch::RangeStrategy::Transform,
            );
            let mut sk = rq.new_sketch();
            par_insert_batch(&mut sk, &data, threads).unwrap();
            let mut qrng = rand::rngs::StdRng::seed_from_u64(9);
            let n = 1u64 << bits;
            let queries: Vec<geometry::HyperRect<2>> = (0..8)
                .map(|_| {
                    let side = n / 8 + qrng.gen_range(0..n / 4);
                    let x = qrng.gen_range(0..n - side - 1);
                    let y = qrng.gen_range(0..n - side - 1);
                    geometry::HyperRect::new([
                        geometry::Interval::new(x, x + side),
                        geometry::Interval::new(y, y + side),
                    ])
                })
                .collect();
            let mut qi = 0usize;
            let ns = time_ns_per_call(|| {
                qi = (qi + 1) % queries.len();
                rq.estimate_with(&mut ctx, &sk, &queries[qi]).unwrap().value
            });
            println!(
                "range  {kernel:?} kernel, instances {instances}: {ns:.0} ns/estimate ({:.2} ns/(est.inst))",
                ns / instances as f64
            );
            range_rec.ns_per_estimate.push(ns);
            range_rec
                .ns_per_estimate_instance
                .push(ns / instances as f64);
        }
        record.join_kernels.push(join_rec);
        record.range_kernels.push(range_rec);
    }
    let names: Vec<&'static str> = kernels.iter().map(|&k| query_kernel_meta(k).0).collect();
    let join_ns: Vec<Vec<f64>> = record
        .join_kernels
        .iter()
        .map(|k| k.ns_per_estimate.clone())
        .collect();
    let range_ns: Vec<Vec<f64>> = record
        .range_kernels
        .iter()
        .map(|k| k.ns_per_estimate.clone())
        .collect();
    record.join_speedups = speedups_of(&names, &join_ns);
    record.range_speedups = speedups_of(&names, &range_ns);
    for s in &record.join_speedups {
        println!(
            "join  {} speedup over {}: {:?}",
            s.faster, s.baseline, s.ratio_per_config
        );
    }
    for s in &record.range_speedups {
        println!(
            "range {} speedup over {}: {:?}",
            s.faster, s.baseline, s.ratio_per_config
        );
    }
    let path = spatial_bench::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
}

#[derive(serde::Serialize)]
struct KernelRecord {
    kernel: String,
    lane_width: usize,
    block_size: usize,
    build_secs: Vec<f64>,
    ns_per_obj_instance: Vec<f64>,
}

#[derive(serde::Serialize)]
struct BuildProbeRecord {
    probe: String,
    objects: usize,
    domain_bits: u32,
    threads: usize,
    instances: Vec<usize>,
    kernels: Vec<KernelRecord>,
    /// Adjacent-kernel ratios (e.g. batched over scalar, wide over batched).
    speedups: Vec<Speedup>,
    /// `None` (serialized as null) when the probe skips the exact join.
    exact_join_pairs: Option<u64>,
    exact_join_secs: Option<f64>,
}

/// Build-throughput sweep per maintenance kernel; optionally one exact-join
/// timing. Appends a record to `results/perf_probe.json`.
fn build_probe(threads: usize, quick: bool, kernels: &[BuildKernel], probe: &str, exact: bool) {
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(50_000, 14, 0.0, 1).generate();
    let configs: &[(usize, usize)] = if quick {
        &[(88, 5)]
    } else {
        &[(88, 5), (440, 5), (1200, 5)]
    };
    let mut record = BuildProbeRecord {
        probe: probe.into(),
        objects: data.len(),
        domain_bits: 14,
        threads,
        instances: configs.iter().map(|&(k1, k2)| k1 * k2).collect(),
        kernels: Vec::new(),
        speedups: Vec::new(),
        exact_join_pairs: None,
        exact_join_secs: None,
    };
    for &kernel in kernels {
        let (name, lane_width, block_size) = build_kernel_meta(kernel);
        let mut rec = KernelRecord {
            kernel: name.into(),
            lane_width,
            block_size,
            build_secs: Vec::new(),
            ns_per_obj_instance: Vec::new(),
        };
        // Fresh RNG per kernel: all kernels see identical schema draws.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for &(k1, k2) in configs {
            let join = SpatialJoin::<2>::new(
                &mut rng,
                SketchConfig::new(k1, k2),
                [14, 14],
                EndpointStrategy::Transform,
            );
            let mut r = join.new_sketch_r().with_kernel(kernel);
            let t = Instant::now();
            par_insert_batch(&mut r, &data, threads).unwrap();
            let el = t.elapsed();
            let ns = el.as_nanos() as f64 / (data.len() as f64 * (k1 * k2) as f64);
            println!(
                "{kernel:?} kernel, instances {}: {el:?} total, {ns:.1} ns/(obj.inst)",
                k1 * k2
            );
            rec.build_secs.push(el.as_secs_f64());
            rec.ns_per_obj_instance.push(ns);
        }
        record.kernels.push(rec);
    }
    let names: Vec<&'static str> = kernels.iter().map(|&k| build_kernel_meta(k).0).collect();
    let ns: Vec<Vec<f64>> = record
        .kernels
        .iter()
        .map(|k| k.ns_per_obj_instance.clone())
        .collect();
    record.speedups = speedups_of(&names, &ns);
    for s in &record.speedups {
        println!(
            "build {} speedup over {}: {:?}",
            s.faster, s.baseline, s.ratio_per_config
        );
    }
    if exact {
        let s: Vec<geometry::HyperRect<2>> =
            datagen::SyntheticSpec::paper(50_000, 14, 0.0, 2).generate();
        let t = Instant::now();
        let c = exact::rect_join_count(&data, &s);
        let el = t.elapsed();
        println!("exact join 50K x 50K: {c} pairs in {el:?}");
        record.exact_join_pairs = Some(c);
        record.exact_join_secs = Some(el.as_secs_f64());
    }
    let path = spatial_bench::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
}

fn main() {
    let args = Args::parse(&["gis", "range", "quick"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let threads = default_threads();

    match args.get("probe") {
        Some("estimate") => {
            estimate_probe(
                threads,
                args.has("quick"),
                &[QueryKernel::Scalar, QueryKernel::Batched, QueryKernel::Wide],
                "estimate",
            );
            return;
        }
        Some("wide") => {
            // Quick head-to-head of the two blocked widths, build + estimate.
            build_probe(
                threads,
                args.has("quick"),
                &[BuildKernel::Batched, BuildKernel::Wide],
                "wide-build",
                false,
            );
            estimate_probe(
                threads,
                args.has("quick"),
                &[QueryKernel::Batched, QueryKernel::Wide],
                "wide-estimate",
            );
            return;
        }
        Some(other) => {
            eprintln!("unknown --probe `{other}` (supported: estimate, wide)");
            std::process::exit(2);
        }
        None => {}
    }

    if args.has("range") {
        use rand::Rng as _;
        use sketch::{RangeQuery, RangeStrategy};
        let bits = 14u32;
        let data: Vec<geometry::HyperRect<2>> =
            datagen::SyntheticSpec::paper(30_000, bits, 0.0, 81).generate();
        let mut qrng = rand::rngs::StdRng::seed_from_u64(83);
        let n = 1u64 << bits;
        let queries: Vec<geometry::HyperRect<2>> = (0..20)
            .map(|i| {
                let side = ((n as f64) * (0.05 + 0.01 * i as f64)) as u64;
                let x = qrng.gen_range(0..n - side - 1);
                let y = qrng.gen_range(0..n - side - 1);
                geometry::HyperRect::new([
                    geometry::Interval::new(x, x + side),
                    geometry::Interval::new(y, y + side),
                ])
            })
            .collect();
        for ml in [4u32, 5, 6, 7, 8, 9, 11, 13] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(90);
            let config = SketchConfig {
                kind: fourwise::XiKind::Bch,
                shape: BoostShape::new(240, 5),
                max_level: Some(ml),
            };
            let rq = RangeQuery::<2>::new(&mut rng, config, [bits, bits], RangeStrategy::Transform);
            let mut sk = rq.new_sketch();
            par_insert_batch(&mut sk, &data, threads).unwrap();
            let mut errs = 0.0;
            for q in &queries {
                let truth = exact::naive::range_count(&data, q) as f64;
                errs += rel_error(rq.estimate(&sk, q).unwrap().value, truth);
            }
            println!(
                "  range maxLevel {ml}: avg rel err {:.4}",
                errs / queries.len() as f64
            );
        }
        return;
    }

    if args.has("gis") {
        // maxLevel sweep on the simulated GIS join.
        let r = datagen::landc(1);
        let s = datagen::lando(1);
        let bits = datagen::GIS_DOMAIN_BITS;
        let truth = exact::rect_join_count(&r, &s) as f64;
        let shape: BoostShape = shape_for_words(2, 9025.0);
        println!("landc-lando truth {truth}, shape {}x{}", shape.k1, shape.k2);
        for ml in 4..=12u32 {
            let mut errs = Vec::new();
            for t in 0..3u64 {
                let mut rng = rand::rngs::StdRng::seed_from_u64(50 + t);
                let config = SketchConfig {
                    kind: fourwise::XiKind::Bch,
                    shape,
                    max_level: Some(ml),
                };
                let join = SpatialJoin::<2>::new(
                    &mut rng,
                    config,
                    [bits, bits],
                    EndpointStrategy::Transform,
                );
                let mut sk_r = join.new_sketch_r();
                let mut sk_s = join.new_sketch_s();
                par_insert_batch(&mut sk_r, &r, threads).unwrap();
                par_insert_batch(&mut sk_s, &s, threads).unwrap();
                errs.push(rel_error(join.estimate(&sk_r, &sk_s).unwrap().value, truth));
            }
            let avg = errs.iter().sum::<f64>() / errs.len() as f64;
            println!("  maxLevel {ml}: avg rel err {avg:.4} ({errs:?})");
        }
        return;
    }

    // Default probe: build-throughput sweep across the whole kernel matrix
    // plus one exact-join timing. Each run *appends* a record to
    // results/perf_probe.json (the committed BENCH_*.json anchors are
    // copies of such records), so successive runs stay diffable.
    build_probe(
        threads,
        args.has("quick"),
        &[BuildKernel::Scalar, BuildKernel::Batched, BuildKernel::Wide],
        "build",
        true,
    );
}

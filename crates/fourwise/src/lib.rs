//! # fourwise — seeded four-wise independent ±1 families
//!
//! Small-space pseudo-random sign families underpinning AMS ("tug-of-war")
//! sketches and their spatial generalization (Das, Gehrke, Riedewald:
//! *Approximation Techniques for Spatial Data*, SIGMOD 2004).
//!
//! The key object is a family of random variables `xi_i ∈ {-1, +1}`, indexed
//! by a domain `{0, .., 2^k - 1}`, such that any four distinct variables are
//! jointly independent. Such a family can be stored in `O(k)` bits (a seed)
//! and any `xi_i` evaluated in `O(k)`-bit operations — the storage/time
//! tradeoff every sketch in this workspace relies on.
//!
//! Two constructions are provided:
//!
//! * [`bch`] — the classical BCH-code construction over GF(2^k) with a seed
//!   of exactly `2k + 1` bits (the paper's construction). Exactly four-wise
//!   independent; verified exhaustively in tests.
//! * [`poly`] — a random cubic polynomial over Z_{2^61-1} mapped to a sign by
//!   parity; four-wise independent with a negligible (< 2^-61) sign bias.
//!
//! [`family`] wraps both behind one interface shaped for the sketch hot loop
//! (shared per-index precomputation across thousands of instances),
//! [`lane`] defines the [`Lane`] machine-word abstraction (portable 64-lane
//! `u64` and the autovectorizable 256-lane [`WideLane`] and 512-lane
//! [`WideLane512`]), [`batch`] builds the lane-width-generic bit-sliced
//! evaluation blocks behind the batched build *and* query kernels (plus the
//! [`BlockSums`] scratch the query side evaluates whole covers into), and
//! [`gf2`] supplies the carry-less GF(2^k) arithmetic the BCH family needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bch;
pub mod family;
pub mod gf2;
pub mod lane;
pub mod poly;

pub use batch::{
    BlockSums, LaneCounter, MultiBlockSums, XiBlock, BLOCK_LANES, WIDE512_LANES, WIDE_LANES,
};
pub use bch::{BchFamily, BchSeed};
pub use family::{IndexPre, XiContext, XiFamily, XiKind, XiSeed, CUBE_TABLE_MAX_BITS};
pub use gf2::GfContext;
pub use lane::{Lane, WideLane, WideLane512};
pub use poly::{PolyFamily, PolySeed};

//! Deserialization half: [`Deserialize`], [`Deserializer`], [`from_value`].

use crate::value::Value;
use std::fmt;

/// Error raised while deserializing (serde's `de::Error`).
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Builds an error carrying a custom message.
    fn custom<T: fmt::Display>(msg: T) -> Self;

    /// A sequence had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn fmt::Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// A value had the wrong type for its slot.
    fn invalid_type(unexpected: &dyn fmt::Display, expected: &dyn fmt::Display) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }
}

/// Concrete deserialization error used by [`ValueDeserializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A source of one [`Value`] tree. Real serde drives a visitor; this
/// stand-in hands the whole parsed tree to the type, which keeps generic
/// `fn deserialize<D: Deserializer<'de>>` signatures source-compatible.
pub trait Deserializer<'de>: Sized {
    /// Error type (must support `custom` / `invalid_length`).
    type Error: Error;

    /// Yields the input as a value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for types deserializable without borrowing from the input —
/// everything in this stand-in, since [`Value`] is owned.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The canonical deserializer: wraps an owned [`Value`] tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value tree.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}

/// Deserializes a `T` out of a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Removes `key` from a derive-produced map and deserializes its value —
/// the helper the `Deserialize` derive expands to for each struct field.
pub fn from_field<T: DeserializeOwned>(
    map: &mut Vec<(String, Value)>,
    key: &str,
) -> Result<T, DeError> {
    let pos = map
        .iter()
        .position(|(k, _)| k == key)
        .ok_or_else(|| DeError::custom(format_args!("missing field `{key}`")))?;
    let (_, value) = map.swap_remove(pos);
    from_value(value).map_err(|e| DeError::custom(format_args!("field `{key}`: {e}")))
}

fn int_from<'de, D: Deserializer<'de>>(deserializer: D, what: &str) -> Result<i128, D::Error> {
    match deserializer.take_value()? {
        Value::Int(v) => Ok(i128::from(v)),
        Value::UInt(v) => Ok(i128::from(v)),
        other => Err(D::Error::invalid_type(&other.kind(), &what)),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide = int_from(deserializer, stringify!($t))?;
                <$t>::try_from(wide).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::invalid_type(&other.kind(), &"bool")),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Float(v) => Ok(v),
            Value::Int(v) => Ok(v as f64),
            Value::UInt(v) => Ok(v as f64),
            other => Err(D::Error::invalid_type(&other.kind(), &"f64")),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::invalid_type(&other.kind(), &"string")),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

fn seq_from<'de, D: Deserializer<'de>>(
    deserializer: D,
    what: &str,
) -> Result<Vec<Value>, D::Error> {
    match deserializer.take_value()? {
        Value::Seq(items) => Ok(items),
        other => Err(D::Error::invalid_type(&other.kind(), &what)),
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = seq_from(deserializer, "sequence")?;
        items
            .into_iter()
            .map(|v| from_value(v).map_err(D::Error::custom))
            .collect()
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = seq_from(deserializer, "fixed-size sequence")?;
        if items.len() != N {
            return Err(D::Error::invalid_length(
                items.len(),
                &format_args!("an array of length {N}"),
            ));
        }
        let mut out = Vec::with_capacity(N);
        for v in items {
            out.push(from_value(v).map_err(D::Error::custom)?);
        }
        out.try_into()
            .map_err(|_| D::Error::custom("array conversion failed"))
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = seq_from(deserializer, "2-tuple")?;
        if items.len() != 2 {
            return Err(D::Error::invalid_length(items.len(), &"a 2-tuple"));
        }
        let mut it = items.into_iter();
        let a = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
        let b = from_value(it.next().expect("len checked")).map_err(D::Error::custom)?;
        Ok((a, b))
    }
}

//! Differential suite for elastic sharding: online split / merge / move
//! and replica failover against an unsharded oracle.
//!
//! Topology changes rebuild shards by **replaying the full update log**
//! through the new partition's routing, and integer counter adds are
//! batch-composition independent — so after *any* sequence of splits,
//! merges and boundary moves, the router's answers must stay
//! **bit-identical** (boosted value and every row mean) to a single
//! unsharded `SketchSet` fed the same object stream. The suite checks that
//! invariant before, between and after each topology op, through
//! post-rebalance ingest and deletes, across both ξ constructions and the
//! query-kernel matrix; a concurrency case hammers queries *while* the
//! topology changes under them (cutover is one atomic epoch swap, so no
//! query may ever observe a half-rebalanced store); and the replica cases
//! walk snapshot install → log tail → failover, requiring the promoted
//! replica to answer bit-identically to the oracle as well.
//!
//! Heavyweight cases (multi-block grids, 3-d) are gated to the
//! `tests-release` lane with `#[cfg_attr(debug_assertions, ignore)]`,
//! following the ROADMAP convention.

use fourwise::XiKind;
use geometry::{HyperRect, Interval, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{QueryRouter, Replica, ReplicaSet, ShardedStore, WorkerContext};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{
    Estimate, LogRetention, QueryContext, QueryKernel, RangeQuery, RangeStrategy, SketchSet,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const KINDS: [XiKind; 2] = [XiKind::Bch, XiKind::Poly];
const KERNELS: [QueryKernel; 3] = [QueryKernel::Scalar, QueryKernel::Batched, QueryKernel::Wide];

fn assert_bit_identical(oracle: &Estimate, routed: &Estimate, label: &str) {
    assert_eq!(
        oracle.value.to_bits(),
        routed.value.to_bits(),
        "{label}: boosted value diverged ({} vs {})",
        oracle.value,
        routed.value
    );
    assert_eq!(
        oracle.row_means.len(),
        routed.row_means.len(),
        "{label}: row count diverged"
    );
    for (i, (a, b)) in oracle
        .row_means
        .iter()
        .zip(routed.row_means.iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: row mean {i} diverged");
    }
}

fn rand_rects<const D: usize>(rng: &mut StdRng, n: usize, max: u64) -> Vec<HyperRect<D>> {
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..max - 17);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

/// Checks range + stab answers against the oracle under every kernel.
fn check_all_kernels<const D: usize>(
    rq: &RangeQuery<D>,
    store: &ShardedStore<D>,
    oracle: &SketchSet<D>,
    queries: &[HyperRect<D>],
    p: &Point<D>,
    label: &str,
) {
    let router = QueryRouter::new();
    for kernel in KERNELS {
        let mut octx = QueryContext::new().with_kernel(kernel);
        let mut ctx = WorkerContext::new().with_kernel(kernel);
        for (qi, q) in queries.iter().enumerate() {
            let routed = router.estimate_range(rq, store, &mut ctx, q).unwrap();
            let want = rq.estimate_with(&mut octx, oracle, q).unwrap();
            assert_bit_identical(&want, &routed, &format!("{label}/{kernel:?}/q{qi}"));
        }
        let routed = router.estimate_stab(rq, store, &mut ctx, p).unwrap();
        let want = rq.estimate_stab_with(&mut octx, oracle, p).unwrap();
        assert_bit_identical(&want, &routed, &format!("{label}/{kernel:?}/stab"));
    }
}

/// The core scenario: ingest → split (unaligned) → ingest → move → merge →
/// delete, with a full oracle comparison between every step.
fn rebalance_config<const D: usize>(kind: XiKind, k1: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = RangeQuery::<D>::new(
        &mut rng,
        SketchConfig::new(k1, 1).with_kind(kind),
        [8; D],
        RangeStrategy::Transform,
    );
    let data = rand_rects::<D>(&mut rng, 60, 255);
    let (early, late) = data.split_at(40);

    let mut oracle = rq.new_sketch();
    let store = ShardedStore::like(&oracle, 3).with_log(LogRetention::Full);

    let queries: Vec<HyperRect<D>> = vec![
        HyperRect::new(std::array::from_fn(|d| data[7].range(d))),
        HyperRect::new(std::array::from_fn(|_| Interval::new(0, 255))),
        HyperRect::new(std::array::from_fn(|d| {
            Interval::point(data[3].range(d).lo())
        })),
    ];
    let p: Point<D> = std::array::from_fn(|d| data[11].range(d).lo());
    let label = |step: &str| format!("rebalance/{kind:?}/{D}d/{k1}x1/{step}");

    oracle.insert_slice(early).unwrap();
    store.insert_slice(early).unwrap();
    check_all_kernels(&rq, &store, &oracle, &queries, &p, &label("before"));

    // Split the first shard at a deliberately non-dyadic coordinate: the
    // explicit-boundary partition and the log replay must cope with
    // boundaries that sit at the finest alignment their value allows.
    store.split_shard(0, 37).unwrap();
    check_all_kernels(&rq, &store, &oracle, &queries, &p, &label("post-split"));

    oracle.insert_slice(late).unwrap();
    store.insert_slice(late).unwrap();
    check_all_kernels(&rq, &store, &oracle, &queries, &p, &label("split+ingest"));

    store.move_shard_boundary(2, 90).unwrap();
    check_all_kernels(&rq, &store, &oracle, &queries, &p, &label("post-move"));

    store.merge_shards(1).unwrap();
    check_all_kernels(&rq, &store, &oracle, &queries, &p, &label("post-merge"));

    let deletions = &data[..data.len() / 4];
    oracle.delete_slice(deletions).unwrap();
    store.delete_slice(deletions).unwrap();
    check_all_kernels(&rq, &store, &oracle, &queries, &p, &label("post-delete"));
}

#[test]
fn topology_changes_preserve_answers_1d_2d() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        rebalance_config::<1>(kind, 13, 700 + i as u64);
        rebalance_config::<2>(kind, 13, 710 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn topology_changes_preserve_answers_multiblock() {
    // 67 instances straddle the 64-lane block width; 150 in 3-d stresses
    // the wide kernel's partial tail blocks through the rebuilt shards.
    for (i, kind) in KINDS.into_iter().enumerate() {
        rebalance_config::<2>(kind, 67, 720 + i as u64);
        rebalance_config::<3>(kind, 150, 730 + i as u64);
    }
}

/// Spatial joins merge only at the counter level, on both sides — so
/// topology changes on either (or both) sides must leave the join
/// estimate bit-identical too.
#[test]
fn joins_survive_topology_changes_on_both_sides() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(740 + i as u64);
        let join = SpatialJoin::<2>::new(
            &mut rng,
            SketchConfig::new(13, 1).with_kind(kind),
            [8, 8],
            EndpointStrategy::Transform,
        );
        let r_data = rand_rects::<2>(&mut rng, 50, 60);
        let s_data = rand_rects::<2>(&mut rng, 50, 60);
        let mut r_oracle = join.new_sketch_r();
        let mut s_oracle = join.new_sketch_s();
        r_oracle.insert_slice(&r_data).unwrap();
        s_oracle.insert_slice(&s_data).unwrap();
        let want = join.estimate(&r_oracle, &s_oracle).unwrap();

        let r_store = ShardedStore::like(&r_oracle, 3).with_log(LogRetention::Full);
        let s_store = ShardedStore::like(&s_oracle, 2).with_log(LogRetention::Full);
        r_store.insert_slice(&r_data).unwrap();
        s_store.insert_slice(&s_data).unwrap();

        let router = QueryRouter::new();
        let mut ctx = WorkerContext::new();
        let label = format!("join-topology/{kind:?}");
        let before = router
            .estimate_join(&join, &r_store, &s_store, &mut ctx)
            .unwrap();
        assert_bit_identical(&want, &before, &format!("{label}/before"));

        r_store.split_shard(0, 19).unwrap();
        s_store.merge_shards(0).unwrap();
        let after = router
            .estimate_join(&join, &r_store, &s_store, &mut ctx)
            .unwrap();
        assert_bit_identical(&want, &after, &format!("{label}/after"));
    }
}

/// Readers hammering the store while its topology changes under them:
/// cutover is a single atomic epoch swap and the data set is held constant
/// through the ops, so **every** answer — whichever epoch the reader
/// caught — must bit-match the one oracle. A torn or half-rebalanced
/// topology would diverge immediately.
#[test]
fn queries_mid_rebalance_never_observe_a_half_swapped_topology() {
    let mut rng = StdRng::seed_from_u64(750);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(16, 3),
        [8, 8],
        RangeStrategy::Transform,
    );
    let data = rand_rects::<2>(&mut rng, 80, 255);
    let mut oracle = rq.new_sketch();
    oracle.insert_slice(&data).unwrap();
    let store = Arc::new(ShardedStore::like(&oracle, 3).with_log(LogRetention::Full));
    store.insert_slice(&data).unwrap();

    let queries: Vec<HyperRect<2>> = vec![
        HyperRect::new([Interval::new(0, 255), Interval::new(0, 255)]),
        HyperRect::new(std::array::from_fn(|d| data[5].range(d))),
        HyperRect::new([Interval::new(30, 130), Interval::new(10, 220)]),
    ];
    let mut octx = QueryContext::new();
    let wants: Vec<Estimate> = queries
        .iter()
        .map(|q| rq.estimate_with(&mut octx, &oracle, q).unwrap())
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for reader in 0..3usize {
            let (store, rq, stop) = (Arc::clone(&store), &rq, &stop);
            let (queries, wants) = (&queries, &wants);
            scope.spawn(move || {
                let router = QueryRouter::new();
                let mut ctx = WorkerContext::new();
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let qi = (reader + round) % queries.len();
                    let got = router
                        .estimate_range(rq, &store, &mut ctx, &queries[qi])
                        .unwrap();
                    assert_bit_identical(
                        &wants[qi],
                        &got,
                        &format!("mid-rebalance reader {reader} round {round}"),
                    );
                    round += 1;
                }
            });
        }
        // Writer: a storm of topology changes while the readers run.
        store.split_shard(0, 37).unwrap();
        store.move_shard_boundary(1, 55).unwrap();
        store.merge_shards(0).unwrap();
        store.split_shard(1, 150).unwrap();
        store.move_shard_boundary(2, 166).unwrap();
        store.merge_shards(1).unwrap();
        stop.store(true, Ordering::Relaxed);
    });
}

/// The replica lifecycle end to end: snapshot install → log tail →
/// serving, then primary loss → failover — and the promoted replica's
/// answers are bit-identical to the oracle of the full history.
#[test]
fn replica_failover_serves_bit_identical_answers() {
    let mut rng = StdRng::seed_from_u64(760);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(16, 3),
        [8, 8],
        RangeStrategy::Transform,
    );
    let data = rand_rects::<2>(&mut rng, 60, 255);
    let (early, late) = data.split_at(30);

    let mut oracle = rq.new_sketch();
    let primary = Arc::new(ShardedStore::like(&oracle, 3).with_log(LogRetention::Full));

    // History before the replica exists.
    oracle.insert_slice(early).unwrap();
    primary.insert_slice(early).unwrap();
    primary.split_shard(0, 37).unwrap();

    // Cold replica seeds from a snapshot of the *current* (post-split)
    // primary, then tails the rest of the history from the log.
    let mut replica = Replica::cold();
    replica
        .install_snapshot(&primary.snapshot(), Arc::clone(primary.schema()))
        .unwrap();
    oracle.insert_slice(late).unwrap();
    primary.insert_slice(late).unwrap();
    let deletions = &data[..15];
    oracle.delete_slice(deletions).unwrap();
    primary.delete_slice(deletions).unwrap();
    replica.catch_up(&primary).unwrap();
    let replica_store = Arc::clone(replica.store().unwrap());

    // Failover: the primary goes down, the set serves the replica.
    let mut set = ReplicaSet::new(Arc::clone(&primary));
    set.add_replica(Arc::clone(&replica_store));
    set.mark_down(0);
    let (serving, promoted) = set.serving().expect("replica is up");
    assert_eq!(serving, 1);
    assert_eq!(set.failovers(), 1);

    let queries: Vec<HyperRect<2>> = vec![
        HyperRect::new([Interval::new(0, 255), Interval::new(0, 255)]),
        HyperRect::new(std::array::from_fn(|d| data[9].range(d))),
    ];
    let p: Point<2> = std::array::from_fn(|d| data[21].range(d).lo());
    check_all_kernels(&rq, promoted, &oracle, &queries, &p, "failover");

    // The primary recovers: fail back and keep serving bit-identically.
    set.mark_up(0);
    let (serving, back) = set.serving().expect("primary is back");
    assert_eq!(serving, 0);
    check_all_kernels(&rq, back, &oracle, &queries, &p, "fail-back");
}

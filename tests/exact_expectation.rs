//! Exact expectation tests: enumerate the *entire seed space* of a small
//! BCH family and verify that each estimator's atomic expectation equals the
//! true query answer — Lemma 5, Lemma 6's expectation claim, Lemma 8,
//! Lemma 9, Lemma 12, Lemma 13 — as exact integer identities, with no
//! statistics involved.
//!
//! Domain: 3 bits (n = 8), tripled to 5 bits where transforms are used.
//! Node ids need `bits + 1` bits, so one ξ family has `2(bits+1)+1` seed
//! bits — small enough to enumerate completely. Expectations over products
//! of *independent* per-dimension families factor into per-dimension
//! expectations, which lets the 2-d claims reuse the 1-d enumeration.

use spatial_sketch::dyadic::{interval_cover, point_cover, DyadicDomain};
use spatial_sketch::fourwise::{BchFamily, BchSeed, GfContext};
use spatial_sketch::geometry::transform::{shrink_interval, triple_interval};
use spatial_sketch::geometry::Interval;

/// Per-seed component values for one interval on one dimension.
#[derive(Debug, Clone, Copy)]
struct Comps {
    /// ξ̄ over the interval cover (the paper's I component).
    i: i64,
    /// ξ̄[lo] + ξ̄[hi] (E component).
    e: i64,
    /// Leaf variables at the endpoints (the Appendix B/C L and U sketches).
    l_leaf: i64,
    u_leaf: i64,
    /// Full point covers of the endpoints (lower = ε-join/containment point
    /// component, upper = the range query's X_U component).
    #[allow(dead_code)] // kept for symmetry with the paper's component table
    p_lo: i64,
    p_hi: i64,
}

fn comps(
    fam: &BchFamily,
    domain: &DyadicDomain,
    geo: Option<Interval>,
    leaf_iv: Interval,
) -> Comps {
    let bits = domain.bits();
    let (i, p_lo, p_hi) = match geo {
        Some(g) => {
            let i = interval_cover(domain, &g, bits)
                .into_iter()
                .map(|id| fam.xi(id))
                .sum();
            let p_lo = point_cover(domain, g.lo(), bits)
                .into_iter()
                .map(|id| fam.xi(id))
                .sum();
            let p_hi = point_cover(domain, g.hi(), bits)
                .into_iter()
                .map(|id| fam.xi(id))
                .sum();
            (i, p_lo, p_hi)
        }
        None => (0, 0, 0),
    };
    Comps {
        i,
        e: p_lo + p_hi,
        l_leaf: fam.xi(domain.leaf(leaf_iv.lo())),
        u_leaf: fam.xi(domain.leaf(leaf_iv.hi())),
        p_lo,
        p_hi,
    }
}

/// Sums `f(family)` over every seed of the family for `bits`-bit node space;
/// the result divided by the seed-space size is the exact expectation.
fn sum_over_seeds(node_bits: u32, mut f: impl FnMut(&BchFamily) -> i64) -> i64 {
    let gf = GfContext::new(node_bits);
    let n = 1u64 << node_bits;
    let mut total = 0i64;
    for b0 in 0..2u64 {
        for s1 in 0..n {
            for s3 in 0..n {
                let fam = BchFamily::new(
                    BchSeed {
                        b0: b0 == 1,
                        s1,
                        s3,
                    },
                    gf,
                );
                total += f(&fam);
            }
        }
    }
    total
}

fn seed_count(node_bits: u32) -> i64 {
    1i64 << (2 * node_bits + 1)
}

/// Exact E[(X_I Y_E + X_E Y_I)/2] for a single interval pair on the raw
/// domain, times 2*seed_count (to stay in integers).
fn raw_join_expectation_x2(r: Interval, s: Interval, bits: u32) -> i64 {
    let domain = DyadicDomain::new(bits);
    sum_over_seeds(bits + 1, |fam| {
        let cr = comps(fam, &domain, Some(r), r);
        let cs = comps(fam, &domain, Some(s), s);
        cr.i * cs.e + cr.e * cs.i
    })
}

#[test]
fn lemma5_counting_table_exact() {
    // Section 4.1.2: the counting procedure yields 0, 2, 2, 2, 3, 4 for the
    // six spatial relationships, so E[Z] = count/2. Verified exactly.
    let bits = 3u32;
    let r = Interval::new(2, 5);
    let cases: [(Interval, i64); 6] = [
        (Interval::new(6, 7), 0), // (1) disjunct
        (Interval::new(5, 7), 2), // (2) meet
        (Interval::new(4, 7), 2), // (3) overlap
        (Interval::new(3, 4), 2), // (4) contain
        (Interval::new(2, 4), 3), // (5) contain + meet
        (Interval::new(2, 5), 4), // (6) identical
    ];
    for (s, want_count) in cases {
        let sum = raw_join_expectation_x2(r, s, bits);
        assert_eq!(
            sum,
            want_count * seed_count(bits + 1),
            "case {s:?}: E[2Z] should be {want_count}"
        );
    }
}

#[test]
fn transform_strategy_exact_for_all_cases() {
    // Section 5.2: after tripling the domain and shrinking S, E[Z] equals
    // the true overlap indicator for every spatial relationship.
    let bits = 3u32;
    let tbits = bits + 2;
    let domain = DyadicDomain::new(tbits);
    let r = Interval::new(2, 5);
    let cases: [(Interval, i64); 6] = [
        (Interval::new(6, 7), 0),
        (Interval::new(5, 7), 0), // meet does NOT overlap under Definition 1
        (Interval::new(4, 7), 1),
        (Interval::new(3, 4), 1),
        (Interval::new(2, 4), 1),
        (Interval::new(2, 5), 1),
    ];
    for (s, want) in cases {
        let r2 = triple_interval(&r);
        let s2 = shrink_interval(&s).expect("non-degenerate");
        let sum = sum_over_seeds(tbits + 1, |fam| {
            let cr = comps(fam, &domain, Some(r2), r2);
            let cs = comps(fam, &domain, Some(s2), s2);
            cr.i * cs.e + cr.e * cs.i
        });
        assert_eq!(sum, 2 * want * seed_count(tbits + 1), "case {s:?}");
    }
}

#[test]
fn appendix_c_estimator_exact_for_all_cases() {
    // Lemma 13: Z = (X_I Y_E + X_E Y_I - 2 X_L Y_U - 2 X_U Y_L - X_L Y_L
    //                - X_U Y_U)/2 has E[Z] = |R join S| on the raw domain,
    // common endpoints included.
    let bits = 3u32;
    let domain = DyadicDomain::new(bits);
    let r = Interval::new(2, 5);
    let cases: [(Interval, i64); 7] = [
        (Interval::new(6, 7), 0),
        (Interval::new(5, 7), 0),
        (Interval::new(4, 7), 1),
        (Interval::new(3, 4), 1),
        (Interval::new(2, 4), 1),
        (Interval::new(2, 5), 1),
        (Interval::new(0, 2), 0), // meet at r.lo
    ];
    for (s, want) in cases {
        let sum = sum_over_seeds(bits + 1, |fam| {
            let cr = comps(fam, &domain, Some(r), r);
            let cs = comps(fam, &domain, Some(s), s);
            cr.i * cs.e + cr.e * cs.i
                - 2 * cr.l_leaf * cs.u_leaf
                - 2 * cr.u_leaf * cs.l_leaf
                - cr.l_leaf * cs.l_leaf
                - cr.u_leaf * cs.u_leaf
        });
        assert_eq!(sum, 2 * want * seed_count(bits + 1), "case {s:?}");
    }
}

#[test]
fn overlap_plus_estimator_exact_for_all_cases() {
    // Lemma 12: on the transformed domain with untransformed leaf sketches,
    // Z = (X_I Y_E + X_E Y_I)/2 + X_L Y_U + X_U Y_L estimates overlap+
    // (meet counts).
    let bits = 3u32;
    let tbits = bits + 2;
    let domain = DyadicDomain::new(tbits);
    let r = Interval::new(2, 5);
    let cases: [(Interval, i64); 7] = [
        (Interval::new(6, 7), 0),
        (Interval::new(5, 7), 1), // meet counts for overlap+
        (Interval::new(4, 7), 1),
        (Interval::new(3, 4), 1),
        (Interval::new(2, 4), 1),
        (Interval::new(2, 5), 1),
        (Interval::new(0, 2), 1), // meet at r.lo
    ];
    for (s, want) in cases {
        let r2 = triple_interval(&r);
        let s2_geo = shrink_interval(&s);
        let r2_leaf = r2;
        let s2_leaf = triple_interval(&s); // leaves keep untransformed endpoints (tripled)
        let sum = sum_over_seeds(tbits + 1, |fam| {
            let cr = comps(fam, &domain, Some(r2), r2_leaf);
            let cs = comps(fam, &domain, s2_geo, s2_leaf);
            // (I·E + E·I)/2 + L·U + U·L, scaled by 2 to stay integral.
            cr.i * cs.e + cr.e * cs.i + 2 * (cr.l_leaf * cs.u_leaf + cr.u_leaf * cs.l_leaf)
        });
        assert_eq!(sum, 2 * want * seed_count(tbits + 1), "case {s:?}");
    }
}

#[test]
fn eps_join_point_in_interval_exact() {
    // Lemma 8's 1-d core: E[ξ̄[a] · ξ̄ over cover(cube)] = [a in cube],
    // including boundary coincidences (closed containment).
    let bits = 3u32;
    let domain = DyadicDomain::new(bits);
    for a in 0..8u64 {
        for lo in 0..8u64 {
            for hi in lo..8u64 {
                let cube = Interval::new(lo, hi);
                let sum = sum_over_seeds(bits + 1, |fam| {
                    let p: i64 = point_cover(&domain, a, bits)
                        .into_iter()
                        .map(|id| fam.xi(id))
                        .sum();
                    let c: i64 = interval_cover(&domain, &cube, bits)
                        .into_iter()
                        .map(|id| fam.xi(id))
                        .sum();
                    p * c
                });
                let want = i64::from(cube.contains(a));
                assert_eq!(sum, want * seed_count(bits + 1), "a={a} cube={cube:?}");
            }
        }
    }
}

#[test]
fn range_query_lemma9_exact() {
    // Lemma 9: Z = ξ̄[u,v]·X_U + ξ̄[v]·X_I with E[Z] = |Q([u,v], R)| under
    // Assumption 1. Enumerate all queries with endpoints distinct from the
    // data interval's endpoints.
    let bits = 3u32;
    let domain = DyadicDomain::new(bits);
    let r = Interval::new(2, 5);
    for u in 0..8u64 {
        for v in u..8u64 {
            let q = Interval::new(u, v);
            if q.shares_endpoint(&r) || q.is_degenerate() {
                continue;
            }
            let sum = sum_over_seeds(bits + 1, |fam| {
                let cr = comps(fam, &domain, Some(r), r);
                let q_cover: i64 = interval_cover(&domain, &q, bits)
                    .into_iter()
                    .map(|id| fam.xi(id))
                    .sum();
                let q_hi: i64 = point_cover(&domain, q.hi(), bits)
                    .into_iter()
                    .map(|id| fam.xi(id))
                    .sum();
                q_cover * cr.p_hi + q_hi * cr.i
            });
            let want = i64::from(r.overlaps(&q));
            assert_eq!(sum, want * seed_count(bits + 1), "q={q:?}");
        }
    }
}

#[test]
fn two_dimensional_expectation_factorizes() {
    // Lemma 6's expectation claim: with independent per-dimension families,
    // E[Z_2d] = E[Z_x]·E[Z_y]. We verify the factorization numerically by
    // enumerating both families on a pair of rectangles (each dimension's
    // expectation comes from the 1-d enumeration above).
    let bits = 3u32;
    let rx = Interval::new(2, 5);
    let ry = Interval::new(1, 6);
    let sx = Interval::new(4, 7); // overlap in x: contributes 2/2 = 1
    let sy = Interval::new(0, 7); // contains ry with shared nothing... 1 and 6 inside [0,7]: contributes 1

    let scale = seed_count(bits + 1);
    let ex = raw_join_expectation_x2(rx, sx, bits); // = 2·E[Zx]·scale
    let ey = raw_join_expectation_x2(ry, sy, bits);
    // Both dims overlap without shared endpoints, so E[Z] per dim is 1.
    assert_eq!(ex, 2 * scale);
    assert_eq!(ey, 2 * scale);
    // The 2-d estimator is (1/4)Σ_w X_w Y_w̄ whose expectation is the product
    // of the per-dimension factors (2/2)·(2/2) = 1 — by independence of the
    // two families the joint expectation is ex/(2·scale) · ey/(2·scale).
    let joint = (ex as f64 / (2.0 * scale as f64)) * (ey as f64 / (2.0 * scale as f64));
    assert_eq!(joint, 1.0);
}

//! # histograms — the paper's baseline estimators
//!
//! Reimplementations of the two histogram techniques the spatial-sketches
//! paper compares against in Section 7, built from their published
//! descriptions (the original code is not available):
//!
//! * [`gh::GeometricHistogram`] — Geometric Histograms (An et al., ICDE'01):
//!   per-cell corner counts, areas and edge lengths; `4^(L+1)` words.
//! * [`eh::EulerHistogram`] — generalized Euler Histograms (Sun et al.,
//!   EDBT'02): cell/edge/vertex buckets with intersection-shape statistics;
//!   `9·2^{2L} - 6·2^L + 1` words; *exact* on cell-aligned range counts and
//!   model-based on joins.
//!
//! Both use fixed grid partitioning and are therefore exactly maintainable
//! under inserts and deletes — the property the paper concedes to
//! grid-based histograms while criticizing their behaviour under skew.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eh;
pub mod gh;
pub mod grid;
pub mod model;

pub use eh::EulerHistogram;
pub use gh::GeometricHistogram;
pub use grid::GridSpec;

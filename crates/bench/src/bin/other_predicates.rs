//! Ablation A8: the Appendix B predicates — extended joins (`overlap+`) and
//! containment joins.
//!
//! The workload is lattice-aligned so touching pairs are common (making
//! `⋈+_o` visibly larger than `⋈_o`) and containment pairs plentiful.
//!
//! Usage: cargo run --release -p spatial-bench --bin other_predicates
//!   [-- --size 8000] [--trials 3] [--threads N]

use geometry::{HyperRect, Interval};
use rand::Rng as _;
use rand::SeedableRng;
use serde::Serialize;
use sketch::estimators::SketchConfig;
use sketch::{
    par_insert_batch, plan, BoostShape, IntervalContainment, OverlapPlusJoin, RectContainment,
};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::{default_threads, mean_sketch_extent};

#[derive(Serialize)]
struct Record {
    size: usize,
    overlap_plus_truth: u64,
    overlap_plus_err: f64,
    strict_truth: u64,
    containment_1d_truth: u64,
    containment_1d_err: f64,
    containment_2d_truth: u64,
    containment_2d_err: f64,
}

fn lattice_rects(n: usize, bits: u32, grid: u64, seed: u64) -> Vec<HyperRect<2>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cells = (1u64 << bits) / grid;
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0..cells - 4) * grid;
            let y = rng.gen_range(0..cells - 4) * grid;
            let w = rng.gen_range(1..=4u64) * grid;
            let h = rng.gen_range(1..=4u64) * grid;
            HyperRect::new([Interval::new(x, x + w), Interval::new(y, y + h)])
        })
        .collect()
}

fn main() {
    let args = Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let size: usize = args.get_or("size", 8_000).expect("--size");
    let trials: u32 = args.get_or("trials", 3).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");

    let bits = 12u32;
    let r = lattice_rects(size, bits, 128, 131);
    let s = lattice_rects(size, bits, 128, 132);
    let shape = BoostShape::new(400, 5);
    let max_level = plan::adaptive_max_level(mean_sketch_extent(&[&r, &s]), bits + 2);
    let config = SketchConfig {
        kind: fourwise::XiKind::Bch,
        shape,
        max_level: Some(max_level),
    };

    println!("# A8 — Appendix B predicates (size {size}, lattice-aligned)");
    let mut table = Table::new(
        "extended and containment joins",
        &["predicate", "truth", "mean estimate", "rel err"],
    );

    // overlap+ join (Appendix B.1).
    let plus_truth = exact::naive::join_plus_count(&r, &s);
    let strict_truth = exact::rect_join_count(&r, &s);
    let mut est_sum = 0.0;
    for t in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11_000 + 5 * t as u64);
        let join = OverlapPlusJoin::<2>::new(&mut rng, config, [bits, bits]);
        let mut sk_r = join.new_sketch_r();
        let mut sk_s = join.new_sketch_s();
        par_insert_batch(&mut sk_r, &r, threads).expect("R");
        par_insert_batch(&mut sk_s, &s, threads).expect("S");
        est_sum += join.estimate(&sk_r, &sk_s).expect("estimate").value;
    }
    let plus_est = est_sum / trials as f64;
    let plus_err = rel_error(plus_est, plus_truth as f64);
    table.push_row(vec![
        "overlap+ (B.1)".into(),
        plus_truth.to_string(),
        format_num(plus_est),
        format_num(plus_err),
    ]);
    eprintln!(
        "  overlap+: truth {plus_truth} (strict {strict_truth}), estimate {plus_est:.0}, err {plus_err:.4}"
    );

    // 1-d containment join (Appendix B.2) on the x-projections.
    let r_iv: Vec<Interval> = r.iter().map(|x| x.range(0)).collect();
    let s_iv: Vec<Interval> = s.iter().map(|x| x.range(0)).collect();
    let c1_truth = exact::interval_containment_count(&r_iv, &s_iv);
    let mut est_sum = 0.0;
    for t in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12_000 + 5 * t as u64);
        let est = IntervalContainment::new(&mut rng, config, bits);
        let mut outer = est.new_sketch_outer();
        let mut inner = est.new_sketch_inner();
        for iv in &r_iv {
            est.insert_outer(&mut outer, iv).expect("outer");
        }
        for iv in &s_iv {
            est.insert_inner(&mut inner, iv).expect("inner");
        }
        est_sum += est.estimate(&outer, &inner).expect("estimate").value;
    }
    let c1_est = est_sum / trials as f64;
    let c1_err = rel_error(c1_est, c1_truth as f64);
    table.push_row(vec![
        "containment 1-d (B.2)".into(),
        c1_truth.to_string(),
        format_num(c1_est),
        format_num(c1_err),
    ]);
    eprintln!("  containment 1-d: truth {c1_truth}, estimate {c1_est:.0}, err {c1_err:.4}");

    // 2-d containment join.
    let c2_truth = exact::containment_count(&r, &s);
    let mut est_sum = 0.0;
    for t in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13_000 + 5 * t as u64);
        let est = RectContainment::new(&mut rng, config, bits);
        let mut outer = est.new_sketch_outer();
        let mut inner = est.new_sketch_inner();
        for x in &r {
            est.insert_outer(&mut outer, x).expect("outer");
        }
        for x in &s {
            est.insert_inner(&mut inner, x).expect("inner");
        }
        est_sum += est.estimate(&outer, &inner).expect("estimate").value;
    }
    let c2_est = est_sum / trials as f64;
    let c2_err = rel_error(c2_est, c2_truth as f64);
    table.push_row(vec![
        "containment 2-d (B.2)".into(),
        c2_truth.to_string(),
        format_num(c2_est),
        format_num(c2_err),
    ]);
    eprintln!("  containment 2-d: truth {c2_truth}, estimate {c2_est:.0}, err {c2_err:.4}");

    table.print();
    table.write_csv("other_predicates");
    let rec = Record {
        size,
        overlap_plus_truth: plus_truth,
        overlap_plus_err: plus_err,
        strict_truth,
        containment_1d_truth: c1_truth,
        containment_1d_err: c1_err,
        containment_2d_truth: c2_truth,
        containment_2d_err: c2_err,
    };
    let json = write_json("other_predicates", &rec);
    println!("wrote {}", json.display());
}

//! Differential suite: the multi-query batch kernel against the sequential
//! single-query oracle.
//!
//! `RangeQuery::estimate_batch_with` merges a batch's unique queries into
//! one deduplicated dyadic-cover worklist and answers them in a single
//! sweep per instance block. Exact `i64` lane sums make the cell sharing
//! free and per-query f64 term order is preserved, so every batched answer
//! must be **bit-identical** — boosted value *and* every row mean — to the
//! corresponding single-query call, across both ξ constructions, dims 1–3,
//! batch sizes 1/7/64, every kernel width, and batches containing
//! overlapping rects, exact duplicates, stabs at shared data corners,
//! degenerate rects and out-of-domain failures.
//!
//! Heavyweight cases (batch 64, multi-block 3-d) are gated to the
//! `tests-release` lane with `#[cfg_attr(debug_assertions, ignore)]`,
//! following the ROADMAP convention.

use fourwise::XiKind;
use geometry::{HyperRect, Interval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketch::estimators::SketchConfig;
use sketch::{
    BatchQuery, Estimate, QueryContext, QueryKernel, RangeQuery, RangeStrategy, Result, SketchSet,
};

const KINDS: [XiKind; 2] = [XiKind::Bch, XiKind::Poly];

fn assert_bit_identical(want: &Estimate, got: &Estimate, label: &str) {
    assert_eq!(
        want.value.to_bits(),
        got.value.to_bits(),
        "{label}: boosted value diverged ({} vs {})",
        want.value,
        got.value
    );
    assert_eq!(
        want.row_means.len(),
        got.row_means.len(),
        "{label}: row count diverged"
    );
    for (i, (a, b)) in want.row_means.iter().zip(got.row_means.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: row mean {i} diverged");
    }
}

fn rand_rects<const D: usize>(rng: &mut StdRng, n: usize, max: u64) -> Vec<HyperRect<D>> {
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..max - 17);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

/// A deterministic batch of `n` queries cycling a small hot pool:
/// overlapping rects anchored on data endpoints (so covers share cells), an
/// exact duplicate, stabs at shared data corners, one degenerate rect and
/// one out-of-domain rect — every shape a serving batch can contain.
fn batch_of<const D: usize>(data: &[HyperRect<D>], n: usize, max: u64) -> Vec<BatchQuery<D>> {
    let rect = |k: usize| {
        let base = &data[(k * 7) % data.len()];
        BatchQuery::Range(HyperRect::new(std::array::from_fn(|d| {
            let lo = base.range(d).lo().saturating_sub(k as u64);
            Interval::new(lo, (lo + 12 + 3 * k as u64).min(max))
        })))
    };
    let stab = |k: usize| {
        let base = &data[(k * 11) % data.len()];
        BatchQuery::Stab(std::array::from_fn(|d| base.range(d).lo()))
    };
    let pool = [
        rect(0),
        stab(0),
        rect(1),
        rect(0), // exact duplicate of slot 0
        stab(1),
        rect(2),
        // Degenerate in every dimension: selects nothing, answers zero.
        BatchQuery::Range(HyperRect::new(std::array::from_fn(|_| Interval::point(9)))),
        rect(3),
        // One past the domain: fails its slot alone (DomainOverflow).
        BatchQuery::Range(HyperRect::new(std::array::from_fn(|_| {
            Interval::new(0, max + 1)
        }))),
        rect(4),
        stab(2),
        rect(5),
        rect(6),
        stab(3),
    ];
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

fn oracle<const D: usize>(
    rq: &RangeQuery<D>,
    ctx: &mut QueryContext,
    sk: &SketchSet<D>,
    q: &BatchQuery<D>,
) -> Result<Estimate> {
    match q {
        BatchQuery::Range(rect) => rq.estimate_with(ctx, sk, rect),
        BatchQuery::Stab(p) => rq.estimate_stab_with(ctx, sk, p),
    }
}

/// One configuration: a sketch over random data, batches of every requested
/// size through the full kernel matrix, each slot compared bit-for-bit
/// against the sequential scalar oracle. Each kernel runs every batch twice
/// — the second round rides the warm multi-plan cache and must not drift.
fn batch_config<const D: usize>(kind: XiKind, k1: usize, sizes: &[usize], seed: u64) {
    let label = format!("batch/{kind:?}/{D}d/{k1}x1");
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = RangeQuery::<D>::new(
        &mut rng,
        SketchConfig::new(k1, 1).with_kind(kind),
        [8; D],
        RangeStrategy::Transform,
    );
    let mut sk = rq.new_sketch();
    let data = rand_rects::<D>(&mut rng, 60, 255);
    sk.insert_slice(&data).unwrap();
    let mut octx = QueryContext::new().with_kernel(QueryKernel::Scalar);
    for &n in sizes {
        let batch = batch_of(&data, n, 255);
        let want: Vec<Result<Estimate>> = batch
            .iter()
            .map(|q| oracle(&rq, &mut octx, &sk, q))
            .collect();
        for kernel in [
            QueryKernel::Scalar,
            QueryKernel::Batched,
            QueryKernel::Wide,
            QueryKernel::Wide512,
            QueryKernel::Auto,
        ] {
            let mut ctx = QueryContext::new().with_kernel(kernel);
            for round in 0..2 {
                let got = rq.estimate_batch_with(&mut ctx, &sk, &batch);
                assert_eq!(got.len(), want.len(), "{label}: reply arity");
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    let slot = format!("{label}/{kernel:?}/n{n}/round{round}/slot{i}");
                    match (g, w) {
                        (Ok(g), Ok(w)) => assert_bit_identical(w, g, &slot),
                        (Err(g), Err(w)) => assert_eq!(g, w, "{slot}: errors diverged"),
                        (g, w) => panic!("{slot}: batched {g:?} vs oracle {w:?}"),
                    }
                }
            }
            if kernel == QueryKernel::Batched && n > 1 {
                // The second round recalled the merged plan instead of
                // recompiling it.
                let report = ctx.plan_cache_report();
                assert_eq!(report.multi.misses, 1, "{label}/n{n}: multi-plan misses");
                assert_eq!(report.multi.hits, 1, "{label}/n{n}: multi-plan hits");
            }
        }
    }
}

#[test]
fn batch_kernels_agree_1d_2d() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        // 67 instances: one full 64-lane block plus a 3-lane tail.
        batch_config::<1>(kind, 67, &[1, 7], 400 + i as u64);
        batch_config::<2>(kind, 13, &[1, 7], 410 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn batch_kernels_agree_batch64() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        batch_config::<1>(kind, 67, &[64], 420 + i as u64);
        batch_config::<2>(kind, 67, &[64], 430 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn batch_kernels_agree_3d_multiblock() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        // 150 instances: two full blocks plus a 22-lane tail.
        batch_config::<3>(kind, 150, &[1, 7, 64], 440 + i as u64);
    }
}

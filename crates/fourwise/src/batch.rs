//! Bit-sliced multi-instance ξ evaluation: the core of the batched build
//! *and* query kernels.
//!
//! Sketch maintenance evaluates the *same* index against thousands of
//! independent family instances. The scalar path ([`XiFamily::xi_pre`])
//! dispatches per instance and pays a popcount each time. This module
//! transposes the problem: the seeds of up to `L::LANES` instances are
//! packed into *bit planes* (`plane[b]` holds bit `b` of every lane's seed),
//! so one index is evaluated for the whole block with one lane-wise XOR per
//! set bit of the index — `O(k)` word operations for a full block instead of
//! `O(k)` per instance.
//!
//! Everything here is generic over the [`Lane`] word: the portable `u64`
//! width (64 instances per block, [`BLOCK_LANES`]) is the default and the
//! differential oracle; the [`WideLane`] (`[u64; 4]`, 256 instances) and
//! [`WideLane512`] (`[u64; 8]`, 512 instances) widths run the identical
//! algorithms with multi-word lane-wise operations that LLVM autovectorizes.
//! All widths produce bit-identical per-lane sums — lane width only changes
//! how many instances share one pass.
//!
//! Partial tail blocks (a schema whose instance count is not a multiple of
//! the lane width) carry an *occupancy* word count: every backing word at or
//! above `lanes.div_ceil(64)` is all-zero in the seed planes, every sign
//! mask, and every counter plane, so the fold loops run prefix-limited
//! ([`Lane::xor_assign_prefix`] and friends) and skip the dead words — a
//! 128-lane tail in a 512-lane block pays for 2 words, not 8. (Majority-
//! occupied tails stay on the full fixed-width vector code: folding the
//! provably-zero dead words is free and keeps the loops unrolled.)
//!
//! For the BCH family the sign of lane `j` is
//! `b0_j ⊕ <s1_j, i> ⊕ <s3_j, i³>`; XOR-ing the `s1` plane of every set bit
//! of `i` and the `s3` plane of every set bit of `i³` computes all lanes'
//! inner products simultaneously (the classic bit-slicing of GF(2) linear
//! forms). The polynomial family is not linear over GF(2), so its block
//! falls back to per-lane Horner evaluation behind the same interface — the
//! batched kernel stays construction-agnostic and bit-identical either way.
//!
//! Component sums over dyadic covers use [`LaneCounter`], a carry-save adder
//! network over sign masks: per cover node the block mask is folded into
//! vertical counter planes (two lane-wise ops per occupied plane), and
//! per-lane sums are extracted once at the end. Summing a ±1 mask `m` over
//! `n` nodes is `n - 2·ones(lane)`, exactly the integer sum the scalar
//! oracle computes.

use crate::family::{IndexPre, XiContext, XiKind, XiSeed};
use crate::lane::{Lane, WideLane, WideLane512};
use crate::poly::PolyFamily;

#[cfg(doc)]
use crate::family::XiFamily;

/// Instances per block at the default (`u64`) lane width.
pub const BLOCK_LANES: usize = 64;

/// Instances per block at the wide ([`WideLane`]) width.
pub const WIDE_LANES: usize = WideLane::LANES;

/// Instances per block at the 512-lane ([`WideLane512`]) width.
pub const WIDE512_LANES: usize = WideLane512::LANES;

/// Upper bound on the number of masks a [`LaneCounter`] can absorb
/// (`2^PLANES - 1`). Dyadic covers have at most `2·bits ≤ 126` nodes, within
/// bounds for every supported domain.
const PLANES: usize = 8;

/// Packed seeds of up to `L::LANES` BCH family instances over one domain,
/// stored as bit planes for one-pass block evaluation.
#[derive(Debug, Clone)]
pub struct BchBlock<L: Lane = u64> {
    lanes: u32,
    /// Occupied backing words, `lanes.div_ceil(64)`: every seed plane is
    /// all-zero at and above this word, so the fold loops skip them.
    words: u32,
    /// Lane `j` holds seed `j`'s sign-flip bit.
    b0: L,
    /// `s1[b]` lane `j` = bit `b` of seed `j`'s first-order mask.
    s1: Box<[L]>,
    /// `s3[b]` lane `j` = bit `b` of seed `j`'s third-order mask.
    s3: Box<[L]>,
}

impl<L: Lane> BchBlock<L> {
    fn pack(seeds: impl Iterator<Item = crate::bch::BchSeed>, k: u32) -> Self {
        let mut b0 = L::zero();
        let mut s1 = vec![L::zero(); k as usize].into_boxed_slice();
        let mut s3 = vec![L::zero(); k as usize].into_boxed_slice();
        let mut lanes = 0u32;
        for (j, seed) in seeds.enumerate() {
            assert!(j < L::LANES, "xi block holds at most {} seeds", L::LANES);
            if seed.b0 {
                b0.set_bit(j);
            }
            for (b, plane) in s1.iter_mut().enumerate() {
                if (seed.s1 >> b) & 1 == 1 {
                    plane.set_bit(j);
                }
            }
            for (b, plane) in s3.iter_mut().enumerate() {
                if (seed.s3 >> b) & 1 == 1 {
                    plane.set_bit(j);
                }
            }
            lanes += 1;
        }
        let words = (lanes as usize).div_ceil(64) as u32;
        Self {
            lanes,
            words,
            b0,
            s1,
            s3,
        }
    }

    /// Sign mask of the block at one index: lane `j`'s bit set ⇔ lane `j`'s
    /// `xi = -1`. Bits at or above the block's lane count are zero (partial
    /// tail blocks fold only their occupied backing words).
    #[inline]
    pub fn eval_mask(&self, pre: IndexPre) -> L {
        let words = self.words as usize;
        let mut acc = self.b0;
        let mut i = pre.index;
        while i != 0 {
            acc.xor_assign_prefix(&self.s1[i.trailing_zeros() as usize], words);
            i &= i - 1;
        }
        let mut c = pre.cube;
        while c != 0 {
            acc.xor_assign_prefix(&self.s3[c.trailing_zeros() as usize], words);
            c &= c - 1;
        }
        acc
    }

    fn lanes(&self) -> usize {
        self.lanes as usize
    }
}

/// Block of polynomial family instances. The construction is not GF(2)-linear
/// so lanes evaluate individually, packed into the same mask interface.
#[derive(Debug, Clone)]
pub struct PolyBlock {
    fams: Vec<PolyFamily>,
}

impl PolyBlock {
    /// Sign mask at one index (see [`BchBlock::eval_mask`]).
    #[inline]
    pub fn eval_mask<L: Lane>(&self, pre: IndexPre) -> L {
        let mut mask = L::zero();
        for (j, fam) in self.fams.iter().enumerate() {
            if fam.xi(pre.index) < 0 {
                mask.set_bit(j);
            }
        }
        mask
    }
}

/// Packed evaluation block for up to `L::LANES` family instances.
///
/// The block analogue of [`XiFamily`]: built once per (schema, dimension,
/// instance block) and reused for every update. Generic over the [`Lane`]
/// width; `XiBlock` without parameters is the portable 64-lane block.
#[derive(Debug, Clone)]
pub enum XiBlock<L: Lane = u64> {
    /// Bit-sliced BCH block.
    Bch(BchBlock<L>),
    /// Per-lane polynomial block.
    Poly(PolyBlock),
}

impl<L: Lane> XiBlock<L> {
    /// Packs a block from per-instance seeds drawn for `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, holds more than `L::LANES` entries, or
    /// any seed kind does not match the context kind.
    pub fn pack(ctx: &XiContext, seeds: &[XiSeed]) -> Self {
        assert!(
            !seeds.is_empty() && seeds.len() <= L::LANES,
            "xi blocks hold 1..={} seeds, got {}",
            L::LANES,
            seeds.len()
        );
        match ctx.kind() {
            XiKind::Bch => XiBlock::Bch(BchBlock::pack(
                seeds.iter().map(|s| match s {
                    XiSeed::Bch(b) => *b,
                    XiSeed::Poly(_) => panic!("xi seed kind does not match context kind"),
                }),
                ctx.bits(),
            )),
            XiKind::Poly => XiBlock::Poly(PolyBlock {
                fams: seeds
                    .iter()
                    .map(|s| match s {
                        XiSeed::Poly(p) => PolyFamily::new(*p),
                        XiSeed::Bch(_) => panic!("xi seed kind does not match context kind"),
                    })
                    .collect(),
            }),
        }
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        match self {
            XiBlock::Bch(b) => b.lanes(),
            XiBlock::Poly(p) => p.fams.len(),
        }
    }

    /// Number of occupied backing words (`lanes().div_ceil(64)`) — the
    /// occupancy mask partial tail blocks hand to the prefix-limited folds.
    #[inline]
    pub fn occupied_words(&self) -> usize {
        match self {
            XiBlock::Bch(b) => b.words as usize,
            XiBlock::Poly(p) => p.fams.len().div_ceil(64),
        }
    }

    /// Sign mask of the whole block at one index: lane `j`'s bit set ⇔ lane
    /// `j`'s `xi_i = -1`. Bits at or above [`XiBlock::lanes`] are
    /// unspecified.
    #[inline]
    pub fn eval_mask(&self, pre: IndexPre) -> L {
        match self {
            XiBlock::Bch(b) => b.eval_mask(pre),
            XiBlock::Poly(p) => p.eval_mask(pre),
        }
    }

    /// Per-lane `Σ xi` over a precomputed index list — the block analogue of
    /// [`XiFamily::sum_pre`]. Writes `out[j]` for every occupied lane `j`
    /// (`out` must hold at least [`XiBlock::lanes`] entries); `counter` is
    /// cleared and reused as carry-save scratch. Lists longer than
    /// [`LaneCounter::CAPACITY`] are folded in chunks.
    #[inline]
    pub fn sum_pre_into(&self, pres: &[IndexPre], counter: &mut LaneCounter<L>, out: &mut [i64]) {
        let out = &mut out[..self.lanes()];
        // Partial tail blocks only occupy a prefix of the backing words:
        // every mask (and therefore every counter plane) is zero above it,
        // so the carry-save folds run prefix-limited.
        let words = self.occupied_words();
        let mut chunks = pres.chunks(LaneCounter::<L>::CAPACITY as usize);
        // First chunk writes, later chunks accumulate; covers are far below
        // capacity, so the hot path is exactly one write pass.
        let first = chunks.next().unwrap_or(&[]);
        counter.clear();
        for p in first {
            counter.add_mask_prefix(self.eval_mask(*p), words);
        }
        counter.signed_sums_into(out);
        for chunk in chunks {
            counter.clear();
            for p in chunk {
                counter.add_mask_prefix(self.eval_mask(*p), words);
            }
            counter.signed_sums_accum(out);
        }
    }
}

/// Reusable query-side block-evaluation scratch: one [`LaneCounter`] plus a
/// bank of per-lane sum buffers ("slots").
///
/// Estimation evaluates *several* index lists against the same instance
/// block — one per (dimension, cover-list) pair of the query — and needs all
/// the per-lane sums alive at once to form word products. A `BlockSums`
/// holds them side by side so the whole query side of a block is evaluated
/// with zero allocation after the first use.
#[derive(Debug, Clone)]
pub struct BlockSums<L: Lane = u64> {
    counter: LaneCounter<L>,
    /// Slot `s` occupies `sums[s*L::LANES..(s+1)*L::LANES]`.
    sums: Vec<i64>,
    /// Scratch for [`BlockSums::slot_products`] (one lane word's worth).
    prod: Vec<i64>,
}

impl<L: Lane> Default for BlockSums<L> {
    fn default() -> Self {
        Self {
            counter: LaneCounter::new(),
            sums: Vec::new(),
            prod: Vec::new(),
        }
    }
}

impl<L: Lane> BlockSums<L> {
    /// Fresh scratch with no slots; call [`BlockSums::reserve_slots`] or let
    /// [`BlockSums::eval_into`] grow it on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures at least `slots` per-lane buffers exist (grow-only).
    pub fn reserve_slots(&mut self, slots: usize) {
        if self.sums.len() < slots * L::LANES {
            self.sums.resize(slots * L::LANES, 0);
        }
    }

    /// Number of available slots.
    pub fn slots(&self) -> usize {
        self.sums.len() / L::LANES
    }

    /// Evaluates per-lane `Σ xi` of `block` over `pres` into slot `slot`
    /// (the block analogue of [`XiFamily::sum_pre`], see
    /// [`XiBlock::sum_pre_into`]). Grows the slot bank as needed.
    #[inline]
    pub fn eval_into(&mut self, slot: usize, block: &XiBlock<L>, pres: &[IndexPre]) {
        self.reserve_slots(slot + 1);
        let buf = &mut self.sums[slot * L::LANES..(slot + 1) * L::LANES];
        block.sum_pre_into(pres, &mut self.counter, buf);
    }

    /// The per-lane sums of slot `slot`; entries at or above the evaluated
    /// block's lane count are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never evaluated or reserved.
    #[inline]
    pub fn lane_sums(&self, slot: usize) -> &[i64] {
        &self.sums[slot * L::LANES..(slot + 1) * L::LANES]
    }

    /// Per-lane product across slots: entry `j` of the result is
    /// `Π_s lane_sums(slots[s])[j]` over the first `lanes` lanes, multiplied
    /// in slot order — bit-identical to the per-lane scalar fold the query
    /// kernels used to run, but restructured as plain elementwise `i64`
    /// loops over contiguous buffers so the inner loop autovectorizes at
    /// every lane width. Single-slot calls borrow the sums directly.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or any slot was never evaluated.
    #[inline]
    pub fn slot_products(&mut self, slots: &[usize], lanes: usize) -> &[i64] {
        debug_assert!(lanes <= L::LANES);
        let (&first, rest) = slots
            .split_first()
            .expect("slot_products needs at least one slot");
        if rest.is_empty() {
            return &self.sums[first * L::LANES..first * L::LANES + lanes];
        }
        self.prod.resize(L::LANES, 0);
        let prod = &mut self.prod[..lanes];
        prod.copy_from_slice(&self.sums[first * L::LANES..first * L::LANES + lanes]);
        for &s in rest {
            let src = &self.sums[s * L::LANES..s * L::LANES + lanes];
            for (p, v) in prod.iter_mut().zip(src) {
                *p *= *v;
            }
        }
        &self.prod[..lanes]
    }
}

/// Multi-query accumulator bank: a [`LaneCounter`] *per slot*, fed by a
/// deduplicated cell worklist, plus the per-lane sum bank the counters
/// extract into.
///
/// The multi-query kernel's analogue of [`BlockSums`]: where `BlockSums`
/// evaluates one query's cover lists slot by slot (one `eval_mask` per
/// (cell, slot) pair), a `MultiBlockSums` walks a *merged* worklist of
/// unique cells once — each cell's sign mask is computed a single time and
/// folded into every owning slot's counter (ownership in CSR form). Shared
/// cells across a batch of queries thus pay one ξ evaluation, the expensive
/// part (`O(k)` lane-word XORs), and only the cheap carry-save fold
/// (amortized ~2 lane-word ops) per additional owner.
#[derive(Debug, Clone)]
pub struct MultiBlockSums<L: Lane = u64> {
    counters: Vec<LaneCounter<L>>,
    /// Slot `s` occupies `sums[s*L::LANES..(s+1)*L::LANES]`.
    sums: Vec<i64>,
    /// Scratch for [`MultiBlockSums::slot_products`].
    prod: Vec<i64>,
}

impl<L: Lane> Default for MultiBlockSums<L> {
    fn default() -> Self {
        Self {
            counters: Vec::new(),
            sums: Vec::new(),
            prod: Vec::new(),
        }
    }
}

impl<L: Lane> MultiBlockSums<L> {
    /// Fresh bank with no slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures at least `slots` counters and sum buffers exist (grow-only).
    pub fn reserve_slots(&mut self, slots: usize) {
        if self.counters.len() < slots {
            self.counters.resize_with(slots, LaneCounter::new);
        }
        if self.sums.len() < slots * L::LANES {
            self.sums.resize(slots * L::LANES, 0);
        }
    }

    /// Number of available slots.
    pub fn slots(&self) -> usize {
        self.counters.len()
    }

    /// Evaluates a deduplicated worklist against `block`: cell `i`'s sign
    /// mask is computed **once** and folded into every owner slot
    /// `base + owners[j]` for `j` in `owner_off[i]..owner_off[i + 1]`
    /// (owner multiplicity is honored — a cell listed twice for one slot is
    /// folded twice, exactly like a duplicated list entry). Afterwards the
    /// per-lane sums of slots `base..base + slots` are extracted, exactly as
    /// if each slot's cell list had been evaluated with
    /// [`BlockSums::eval_into`]. Grows the bank as needed.
    ///
    /// # Panics
    ///
    /// Panics if `owner_off` is not a well-formed CSR offset table for
    /// `cells`/`owners`, if any owner index is `>= slots`, or if one slot
    /// receives more than [`LaneCounter::CAPACITY`] cells (dyadic covers
    /// stay far below it).
    pub fn eval_worklist(
        &mut self,
        block: &XiBlock<L>,
        cells: &[IndexPre],
        owner_off: &[u32],
        owners: &[u32],
        base: usize,
        slots: usize,
    ) {
        assert_eq!(owner_off.len(), cells.len() + 1, "CSR offsets vs cells");
        self.reserve_slots(base + slots);
        let bank = &mut self.counters[base..base + slots];
        for c in bank.iter_mut() {
            c.clear();
        }
        let words = block.occupied_words();
        for (i, pre) in cells.iter().enumerate() {
            let mask = block.eval_mask(*pre);
            let lo = owner_off[i] as usize;
            let hi = owner_off[i + 1] as usize;
            for &owner in &owners[lo..hi] {
                bank[owner as usize].add_mask_prefix(mask, words);
            }
        }
        let lanes = block.lanes();
        for (s, counter) in bank.iter().enumerate() {
            let slot = base + s;
            counter.signed_sums_into(&mut self.sums[slot * L::LANES..slot * L::LANES + lanes]);
        }
    }

    /// The per-lane sums of slot `slot`; entries at or above the evaluated
    /// block's lane count are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never evaluated or reserved.
    #[inline]
    pub fn lane_sums(&self, slot: usize) -> &[i64] {
        &self.sums[slot * L::LANES..(slot + 1) * L::LANES]
    }

    /// Per-lane product across slots, multiplied in slot order — identical
    /// contract to [`BlockSums::slot_products`].
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or any slot was never evaluated.
    #[inline]
    pub fn slot_products(&mut self, slots: &[usize], lanes: usize) -> &[i64] {
        debug_assert!(lanes <= L::LANES);
        let (&first, rest) = slots
            .split_first()
            .expect("slot_products needs at least one slot");
        if rest.is_empty() {
            return &self.sums[first * L::LANES..first * L::LANES + lanes];
        }
        self.prod.resize(L::LANES, 0);
        let prod = &mut self.prod[..lanes];
        prod.copy_from_slice(&self.sums[first * L::LANES..first * L::LANES + lanes]);
        for &s in rest {
            let src = &self.sums[s * L::LANES..s * L::LANES + lanes];
            for (p, v) in prod.iter_mut().zip(src) {
                *p *= *v;
            }
        }
        &self.prod[..lanes]
    }
}

/// Vertical (bit-sliced) per-lane counter: accumulates sign masks with a
/// carry-save adder network and extracts per-lane ±1 sums at the end.
#[derive(Debug, Clone)]
pub struct LaneCounter<L: Lane = u64> {
    /// `planes[p]` lane `j` = bit `p` of lane `j`'s count of set masks.
    planes: [L; PLANES],
    added: u32,
}

impl<L: Lane> Default for LaneCounter<L> {
    fn default() -> Self {
        Self {
            planes: [L::zero(); PLANES],
            added: 0,
        }
    }
}

impl<L: Lane> LaneCounter<L> {
    /// Most masks one counter can absorb between clears.
    pub const CAPACITY: u32 = (1 << PLANES) - 1;

    /// Fresh all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the all-zero state.
    #[inline]
    pub fn clear(&mut self) {
        self.planes = [L::zero(); PLANES];
        self.added = 0;
    }

    /// Number of masks absorbed since the last clear.
    pub fn len(&self) -> u32 {
        self.added
    }

    /// Whether no masks have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.added == 0
    }

    /// Folds one sign mask into the per-lane counts (ripple-carry over the
    /// occupied planes; amortized ~2 lane-wise ops per mask).
    ///
    /// # Panics
    ///
    /// Panics past [`LaneCounter::CAPACITY`] masks — a silent wrap would
    /// corrupt every lane's count, so the limit is enforced in release
    /// builds too (the predictable branch costs ~1 cycle per mask).
    #[inline]
    pub fn add_mask(&mut self, mask: L) {
        self.add_mask_prefix(mask, L::WORDS)
    }

    /// [`LaneCounter::add_mask`] restricted to the first `words` backing
    /// words — the occupancy skip for partial tail blocks. Sound only when
    /// `mask` (and every mask since the last clear) is all-zero at and above
    /// word `words`: the counter planes then stay zero there too, and the
    /// prefix-limited carry-save step is bit-identical to the full one.
    #[inline]
    pub fn add_mask_prefix(&mut self, mask: L, words: usize) {
        assert!(
            self.added < Self::CAPACITY,
            "LaneCounter overflow: more than {} masks",
            Self::CAPACITY
        );
        let mut carry = mask;
        for plane in &mut self.planes {
            if carry.is_zero_prefix(words) {
                break;
            }
            let t = plane.and_prefix(&carry, words);
            plane.xor_assign_prefix(&carry, words);
            carry = t;
        }
        self.added += 1;
    }

    /// Count of set mask bits seen by one lane.
    #[inline]
    pub fn count(&self, lane: usize) -> u32 {
        let mut c = 0u32;
        for (p, plane) in self.planes.iter().enumerate() {
            c += (plane.bit(lane) as u32) << p;
        }
        c
    }

    /// Writes, per lane, the signed sum `Σ (1 - 2·bit) = added - 2·count`
    /// (interpreting each absorbed mask bit as a ±1 value, set ⇒ −1).
    #[inline]
    pub fn signed_sums_into(&self, out: &mut [i64]) {
        self.signed_sums(out, false)
    }

    /// Like [`LaneCounter::signed_sums_into`] but adds into `out` instead of
    /// overwriting (used to fold capacity-sized chunks of longer lists).
    #[inline]
    pub fn signed_sums_accum(&self, out: &mut [i64]) {
        self.signed_sums(out, true)
    }

    #[inline]
    fn signed_sums(&self, out: &mut [i64], accumulate: bool) {
        debug_assert!(out.len() <= L::LANES);
        let n = self.added as i64;
        // Walk backing words in the outer loop so the inner extraction runs
        // on plain u64 shifts regardless of the lane width. Within a word,
        // the 8 vertical counter planes transpose to one count *byte* per
        // lane (8×8 bit-matrix transpose, 8 lanes at a time) — a handful of
        // word ops per 8 lanes instead of one plane walk per lane. Counts
        // fit a byte exactly because CAPACITY = 2^PLANES - 1 = 255.
        for (w, word_out) in out.chunks_mut(64).enumerate() {
            let planes: [u64; PLANES] = std::array::from_fn(|p| self.planes[p].word(w));
            for (g, group) in word_out.chunks_mut(8).enumerate() {
                let mut x = 0u64;
                for (p, plane) in planes.iter().enumerate() {
                    x |= ((plane >> (8 * g)) & 0xFF) << (8 * p);
                }
                let t = transpose8(x);
                for (i, slot) in group.iter_mut().enumerate() {
                    let c = (t >> (8 * i)) & 0xFF;
                    let sum = n - 2 * c as i64;
                    *slot = if accumulate { *slot + sum } else { sum };
                }
            }
        }
    }
}

/// Transposes an 8×8 bit matrix held row-major in a `u64` (byte `r` = row
/// `r`, bit `c` of it = element `(r, c)`) — Hacker's Delight §7-3. Used to
/// turn 8 vertical counter-plane bytes into 8 per-lane count bytes.
#[inline(always)]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::XiFamily;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    fn random_block(kind: XiKind, k: u32, lanes: usize, seed: u64) -> (XiContext, Vec<XiSeed>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = XiContext::new(kind, k);
        let seeds: Vec<XiSeed> = (0..lanes).map(|_| ctx.random_seed(&mut rng)).collect();
        (ctx, seeds)
    }

    fn eval_mask_matches_scalar_families_at<L: Lane>() {
        for kind in [XiKind::Bch, XiKind::Poly] {
            for lanes in [1usize, 7, L::LANES] {
                let (ctx, seeds) = random_block(kind, 12, lanes, 31 + lanes as u64);
                let block = XiBlock::<L>::pack(&ctx, &seeds);
                assert_eq!(block.lanes(), lanes);
                let fams: Vec<XiFamily> = seeds.iter().map(|&s| ctx.family(s)).collect();
                for i in [0u64, 1, 2, 77, 4095] {
                    let pre = ctx.precompute(i);
                    let mask = block.eval_mask(pre);
                    for (j, fam) in fams.iter().enumerate() {
                        let expect = fam.xi_pre(pre);
                        let got = 1 - 2 * mask.bit(j) as i64;
                        assert_eq!(got, expect, "{kind:?} lane {j} index {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn eval_mask_matches_scalar_families() {
        eval_mask_matches_scalar_families_at::<u64>();
        eval_mask_matches_scalar_families_at::<WideLane>();
        eval_mask_matches_scalar_families_at::<WideLane512>();
    }

    fn sum_pre_into_matches_scalar_sum_at<L: Lane>() {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in [XiKind::Bch, XiKind::Poly] {
            // 100 stays within one LaneCounter chunk; 1000 forces the
            // multi-chunk accumulation path.
            for n in [100usize, 1000] {
                let (ctx, seeds) = random_block(kind, 10, L::LANES, 77);
                let block = XiBlock::<L>::pack(&ctx, &seeds);
                let pres: Vec<IndexPre> = (0..n)
                    .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
                    .collect();
                let mut counter = LaneCounter::<L>::new();
                let mut sums = vec![0i64; L::LANES];
                block.sum_pre_into(&pres, &mut counter, &mut sums);
                for (j, &seed) in seeds.iter().enumerate() {
                    let fam = ctx.family(seed);
                    assert_eq!(sums[j], fam.sum_pre(&pres), "{kind:?} n={n} lane {j}");
                }
            }
        }
    }

    #[test]
    fn sum_pre_into_matches_scalar_sum() {
        sum_pre_into_matches_scalar_sum_at::<u64>();
        sum_pre_into_matches_scalar_sum_at::<WideLane>();
        sum_pre_into_matches_scalar_sum_at::<WideLane512>();
    }

    fn wide_and_narrow_blocks_agree_lane_for_lane_at<L: Lane>() {
        // The same L::LANES seeds packed as one wide block and L::WORDS
        // narrow blocks must produce identical per-lane sums — the oracle
        // chain the differential suites lean on.
        let mut rng = StdRng::seed_from_u64(91);
        for kind in [XiKind::Bch, XiKind::Poly] {
            let (ctx, seeds) = random_block(kind, 11, L::LANES, 92);
            let wide = XiBlock::<L>::pack(&ctx, &seeds);
            let pres: Vec<IndexPre> = (0..120)
                .map(|_| ctx.precompute(rng.gen_range(0..2048u64)))
                .collect();
            let mut wide_counter = LaneCounter::<L>::new();
            let mut wide_sums = vec![0i64; L::LANES];
            wide.sum_pre_into(&pres, &mut wide_counter, &mut wide_sums);
            let mut counter = LaneCounter::<u64>::new();
            let mut sums = [0i64; BLOCK_LANES];
            for (b, chunk) in seeds.chunks(BLOCK_LANES).enumerate() {
                let narrow = XiBlock::<u64>::pack(&ctx, chunk);
                narrow.sum_pre_into(&pres, &mut counter, &mut sums);
                assert_eq!(
                    &wide_sums[b * BLOCK_LANES..(b + 1) * BLOCK_LANES],
                    &sums[..],
                    "{kind:?} block {b}"
                );
            }
        }
    }

    #[test]
    fn wide_and_narrow_blocks_agree_lane_for_lane() {
        wide_and_narrow_blocks_agree_lane_for_lane_at::<WideLane>();
        wide_and_narrow_blocks_agree_lane_for_lane_at::<WideLane512>();
    }

    fn tail_blocks_skip_dead_words_and_match_scalar_at<L: Lane>(lanes: usize) {
        // A partial tail block occupies lanes.div_ceil(64) backing words;
        // the prefix-limited folds must still match the scalar families
        // exactly (and the occupancy count must match the geometry).
        let mut rng = StdRng::seed_from_u64(4096 + lanes as u64);
        for kind in [XiKind::Bch, XiKind::Poly] {
            let (ctx, seeds) = random_block(kind, 12, lanes, 55 + lanes as u64);
            let block = XiBlock::<L>::pack(&ctx, &seeds);
            assert_eq!(block.lanes(), lanes);
            assert_eq!(block.occupied_words(), lanes.div_ceil(64));
            let pres: Vec<IndexPre> = (0..90)
                .map(|_| ctx.precompute(rng.gen_range(0..4096u64)))
                .collect();
            let mut counter = LaneCounter::<L>::new();
            let mut sums = vec![0i64; lanes];
            block.sum_pre_into(&pres, &mut counter, &mut sums);
            for (j, &seed) in seeds.iter().enumerate() {
                let fam = ctx.family(seed);
                assert_eq!(
                    sums[j],
                    fam.sum_pre(&pres),
                    "{kind:?} lanes={lanes} lane {j}"
                );
            }
        }
    }

    #[test]
    fn tail_blocks_skip_dead_words_and_match_scalar() {
        // 70 lanes → 2 of 4 / 2 of 8 occupied words; 300 → 5 of 8; 511/513
        // straddle the word boundary on the widest block.
        tail_blocks_skip_dead_words_and_match_scalar_at::<WideLane>(70);
        tail_blocks_skip_dead_words_and_match_scalar_at::<WideLane>(129);
        tail_blocks_skip_dead_words_and_match_scalar_at::<WideLane512>(70);
        tail_blocks_skip_dead_words_and_match_scalar_at::<WideLane512>(300);
        tail_blocks_skip_dead_words_and_match_scalar_at::<WideLane512>(449);
    }

    #[test]
    fn sum_pre_into_empty_list_is_zero() {
        let (ctx, seeds) = random_block(XiKind::Bch, 8, 3, 11);
        let block = XiBlock::<u64>::pack(&ctx, &seeds);
        let mut counter = LaneCounter::new();
        let mut sums = [7i64; BLOCK_LANES];
        block.sum_pre_into(&[], &mut counter, &mut sums);
        assert_eq!(&sums[..3], &[0, 0, 0]);
    }

    fn block_sums_holds_independent_slots_at<L: Lane>() {
        let mut rng = StdRng::seed_from_u64(6);
        let (ctx, seeds) = random_block(XiKind::Bch, 10, L::LANES, 78);
        let block = XiBlock::<L>::pack(&ctx, &seeds);
        let list_a: Vec<IndexPre> = (0..40u64)
            .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
            .collect();
        let list_b: Vec<IndexPre> = (0..7u64)
            .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
            .collect();
        let mut sums = BlockSums::<L>::new();
        assert_eq!(sums.slots(), 0);
        sums.eval_into(0, &block, &list_a);
        sums.eval_into(1, &block, &list_b);
        assert!(sums.slots() >= 2);
        // Both slots stay valid side by side and match the scalar families.
        for (j, &seed) in seeds.iter().enumerate() {
            let fam = ctx.family(seed);
            assert_eq!(
                sums.lane_sums(0)[j],
                fam.sum_pre(&list_a),
                "slot 0 lane {j}"
            );
            assert_eq!(
                sums.lane_sums(1)[j],
                fam.sum_pre(&list_b),
                "slot 1 lane {j}"
            );
        }
        // Re-evaluating a slot overwrites it without disturbing the other.
        sums.eval_into(0, &block, &list_b);
        for (j, &seed) in seeds.iter().enumerate() {
            let fam = ctx.family(seed);
            assert_eq!(sums.lane_sums(0)[j], fam.sum_pre(&list_b));
            assert_eq!(sums.lane_sums(1)[j], fam.sum_pre(&list_b));
        }
    }

    #[test]
    fn block_sums_holds_independent_slots() {
        block_sums_holds_independent_slots_at::<u64>();
        block_sums_holds_independent_slots_at::<WideLane>();
        block_sums_holds_independent_slots_at::<WideLane512>();
    }

    fn slot_products_match_per_lane_fold_at<L: Lane>() {
        let mut rng = StdRng::seed_from_u64(17);
        let (ctx, seeds) = random_block(XiKind::Bch, 10, L::LANES, 79);
        let block = XiBlock::<L>::pack(&ctx, &seeds);
        let lists: Vec<Vec<IndexPre>> = (0..3)
            .map(|n| {
                (0..20 + 9 * n)
                    .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
                    .collect()
            })
            .collect();
        let mut sums = BlockSums::<L>::new();
        for (slot, list) in lists.iter().enumerate() {
            sums.eval_into(slot, &block, list);
        }
        for slots in [&[1usize][..], &[0, 2], &[2, 0, 1]] {
            let lanes = L::LANES - 3;
            let expect: Vec<i64> = (0..lanes)
                .map(|j| {
                    let mut p = 1i64;
                    for &s in slots {
                        p *= sums.lane_sums(s)[j];
                    }
                    p
                })
                .collect();
            assert_eq!(sums.slot_products(slots, lanes), &expect[..], "{slots:?}");
        }
    }

    #[test]
    fn slot_products_match_per_lane_fold() {
        slot_products_match_per_lane_fold_at::<u64>();
        slot_products_match_per_lane_fold_at::<WideLane>();
        slot_products_match_per_lane_fold_at::<WideLane512>();
    }

    /// Builds the CSR worklist of a set of per-slot lists: unique cells
    /// sorted by id, each owning every (slot, occurrence) that listed it.
    fn worklist_of(
        ctx: &XiContext,
        lists: &[Vec<IndexPre>],
    ) -> (Vec<IndexPre>, Vec<u32>, Vec<u32>) {
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        for (slot, list) in lists.iter().enumerate() {
            for pre in list {
                pairs.push((pre.index, slot as u32));
            }
        }
        pairs.sort_unstable();
        let mut cells = Vec::new();
        let mut owner_off = vec![0u32];
        let mut owners = Vec::new();
        for (index, slot) in pairs {
            if cells.last().map(|c: &IndexPre| c.index) != Some(index) {
                cells.push(ctx.precompute(index));
                owner_off.push(*owner_off.last().unwrap());
            }
            owners.push(slot);
            *owner_off.last_mut().unwrap() += 1;
        }
        (cells, owner_off, owners)
    }

    fn eval_worklist_matches_eval_into_at<L: Lane>(kind: XiKind, lanes: usize) {
        // Overlapping lists with duplicates (one cell twice in list 2): the
        // dedup + ownership fan-out must reproduce BlockSums::eval_into
        // slot for slot, including multiplicity.
        let mut rng = StdRng::seed_from_u64(83 + lanes as u64);
        let (ctx, seeds) = random_block(kind, 11, lanes, 84);
        let block = XiBlock::<L>::pack(&ctx, &seeds);
        let mut lists: Vec<Vec<IndexPre>> = (0..5)
            .map(|n| {
                (0..10 + 7 * n)
                    .map(|_| ctx.precompute(rng.gen_range(0..64u64)))
                    .collect()
            })
            .collect();
        let dup = lists[2][0];
        lists[2].push(dup);
        lists.push(Vec::new()); // a slot owning nothing stays all-zero

        let mut oracle = BlockSums::<L>::new();
        for (slot, list) in lists.iter().enumerate() {
            oracle.eval_into(slot, &block, list);
        }
        let (cells, owner_off, owners) = worklist_of(&ctx, &lists);
        assert!(cells.len() < lists.iter().map(Vec::len).sum::<usize>());
        let mut multi = MultiBlockSums::<L>::new();
        // A nonzero base exercises the offset arithmetic.
        let base = 3;
        multi.eval_worklist(&block, &cells, &owner_off, &owners, base, lists.len());
        for slot in 0..lists.len() {
            assert_eq!(
                &multi.lane_sums(base + slot)[..lanes],
                &oracle.lane_sums(slot)[..lanes],
                "{kind:?} lanes={lanes} slot {slot}"
            );
        }
        // slot_products agree with the oracle's too.
        let ids_m = [base, base + 2];
        let ids_o = [0usize, 2];
        let want = oracle.slot_products(&ids_o, lanes).to_vec();
        assert_eq!(multi.slot_products(&ids_m, lanes), &want[..]);
    }

    #[test]
    fn eval_worklist_matches_eval_into() {
        for kind in [XiKind::Bch, XiKind::Poly] {
            eval_worklist_matches_eval_into_at::<u64>(kind, BLOCK_LANES);
            eval_worklist_matches_eval_into_at::<u64>(kind, 7);
            eval_worklist_matches_eval_into_at::<WideLane>(kind, WIDE_LANES);
            eval_worklist_matches_eval_into_at::<WideLane512>(kind, WIDE512_LANES);
            eval_worklist_matches_eval_into_at::<WideLane512>(kind, 70);
        }
    }

    #[test]
    fn lane_counter_counts_and_sums() {
        let mut c = LaneCounter::<u64>::new();
        // Lane 0 sees 5 set bits, lane 1 sees 2, lane 63 sees 0, of 5 masks.
        let masks = [0b01u64, 0b11, 0b01, 0b11, 0b01];
        for m in masks {
            c.add_mask(m);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.count(0), 5);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(63), 0);
        let mut sums = [0i64; 64];
        c.signed_sums_into(&mut sums);
        assert_eq!(sums[0], -5); // five -1s
        assert_eq!(sums[1], 1); // two -1s, three +1s
        assert_eq!(sums[63], 5); // five +1s
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn wide_lane_counter_counts_across_words() {
        let mut c = LaneCounter::<WideLane>::new();
        // Lanes 0, 70 and 255 live in different backing words.
        let mut m = WideLane::zero();
        m.set_bit(0);
        m.set_bit(70);
        m.set_bit(255);
        for _ in 0..3 {
            c.add_mask(m);
        }
        let mut single = WideLane::zero();
        single.set_bit(70);
        c.add_mask(single);
        assert_eq!(c.count(0), 3);
        assert_eq!(c.count(70), 4);
        assert_eq!(c.count(255), 3);
        assert_eq!(c.count(128), 0);
        let mut sums = vec![0i64; WIDE_LANES];
        c.signed_sums_into(&mut sums);
        assert_eq!(sums[0], 4 - 2 * 3);
        assert_eq!(sums[70], 4 - 2 * 4);
        assert_eq!(sums[255], 4 - 2 * 3);
        assert_eq!(sums[128], 4);
    }

    #[test]
    fn lane_counter_near_capacity() {
        // Covers can reach ~126 nodes; exercise counts well past 64.
        let mut c = LaneCounter::<u64>::new();
        for _ in 0..200 {
            c.add_mask(u64::MAX);
        }
        for lane in [0usize, 31, 63] {
            assert_eq!(c.count(lane), 200);
        }
        let mut sums = [0i64; 1];
        c.signed_sums_into(&mut sums);
        assert_eq!(sums[0], -200);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn pack_rejects_mismatched_seed_kind() {
        let mut rng = StdRng::seed_from_u64(9);
        let poly_ctx = XiContext::new(XiKind::Poly, 8);
        let seed = poly_ctx.random_seed(&mut rng);
        let bch_ctx = XiContext::new(XiKind::Bch, 8);
        let _ = XiBlock::<u64>::pack(&bch_ctx, &[seed]);
    }

    #[test]
    #[should_panic(expected = "1..=64 seeds")]
    fn pack_rejects_oversized_block() {
        let mut rng = StdRng::seed_from_u64(10);
        let ctx = XiContext::new(XiKind::Bch, 8);
        let seeds: Vec<XiSeed> = (0..65).map(|_| ctx.random_seed(&mut rng)).collect();
        let _ = XiBlock::<u64>::pack(&ctx, &seeds);
    }

    #[test]
    #[should_panic(expected = "1..=256 seeds")]
    fn pack_rejects_oversized_wide_block() {
        let mut rng = StdRng::seed_from_u64(10);
        let ctx = XiContext::new(XiKind::Bch, 8);
        let seeds: Vec<XiSeed> = (0..257).map(|_| ctx.random_seed(&mut rng)).collect();
        let _ = XiBlock::<WideLane>::pack(&ctx, &seeds);
    }

    #[test]
    #[should_panic(expected = "1..=512 seeds")]
    fn pack_rejects_oversized_wide512_block() {
        let mut rng = StdRng::seed_from_u64(10);
        let ctx = XiContext::new(XiKind::Bch, 8);
        let seeds: Vec<XiSeed> = (0..513).map(|_| ctx.random_seed(&mut rng)).collect();
        let _ = XiBlock::<WideLane512>::pack(&ctx, &seeds);
    }

    #[test]
    fn prefix_adds_match_full_adds() {
        // Same masks folded with add_mask and add_mask_prefix (under the
        // occupancy contract: masks zero above the prefix) must produce
        // identical planes, counts and sums.
        let mut rng = StdRng::seed_from_u64(23);
        let words = 3usize; // 192 occupied lanes of 512
        let mut full = LaneCounter::<WideLane512>::new();
        let mut prefix = LaneCounter::<WideLane512>::new();
        for _ in 0..200 {
            let mut m = WideLane512::zero();
            for _ in 0..rng.gen_range(0..40) {
                m.set_bit(rng.gen_range(0..words * 64));
            }
            full.add_mask(m);
            prefix.add_mask_prefix(m, words);
        }
        let mut want = vec![0i64; words * 64];
        let mut got = vec![0i64; words * 64];
        full.signed_sums_into(&mut want);
        prefix.signed_sums_into(&mut got);
        assert_eq!(want, got);
        for lane in [0usize, 63, 64, 191] {
            assert_eq!(full.count(lane), prefix.count(lane), "lane {lane}");
        }
    }
}

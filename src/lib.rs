//! # spatial-sketch — approximation techniques for spatial data
//!
//! A faithful, production-quality Rust implementation of
//! **Das, Gehrke, Riedewald: "Approximation Techniques for Spatial Data"
//! (SIGMOD 2004)** — sketch-based selectivity estimation for spatial joins,
//! ε-joins, range queries and containment joins with provable probabilistic
//! error guarantees, plus everything needed to evaluate it: exact query
//! processors, the Euler/Geometric histogram baselines, and deterministic
//! workload generators.
//!
//! This crate is a facade; the implementation lives in focused sub-crates,
//! re-exported here under stable names:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sketch`] | `spatial-sketch-core` | the paper's contribution: atomic sketches, estimators, boosting, planning |
//! | [`geometry`] | `spatial-geometry` | intervals, hyper-rectangles, overlap predicates, transforms |
//! | [`dyadic`] | `spatial-dyadic` | dyadic covers and self-join frequency analysis |
//! | [`fourwise`] | `spatial-fourwise` | seeded four-wise independent ±1 families (BCH / polynomial) |
//! | [`exact`] | `spatial-exact` | ground-truth join/range/ε-join processors |
//! | [`histograms`] | `spatial-histograms` | the EH and GH baselines of Section 7 |
//! | [`datagen`] | `spatial-datagen` | Zipfian/uniform/GIS workloads and update streams |
//! | [`serve`] | `spatial-serve` | sharded sketch stores, epoch-swapped reads, the concurrent query router |
//!
//! ## Quick start
//!
//! Estimate a spatial join from two single-pass sketches:
//!
//! ```
//! use rand::SeedableRng;
//! use spatial_sketch::sketch::estimators::{joins::{EndpointStrategy, SpatialJoin}, SketchConfig};
//! use spatial_sketch::geometry::rect2;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let join = SpatialJoin::<2>::new(
//!     &mut rng,
//!     SketchConfig::new(128, 5),          // k1 x k2 boosting grid
//!     [12, 12],                           // domain bits per dimension
//!     EndpointStrategy::Transform,        // robust to shared endpoints
//! );
//! let (mut r, mut s) = (join.new_sketch_r(), join.new_sketch_s());
//! r.insert(&rect2(100, 300, 100, 300)).unwrap();
//! s.insert(&rect2(200, 400, 200, 400)).unwrap();
//! s.insert(&rect2(3000, 3100, 3000, 3100)).unwrap();
//! let est = join.estimate(&r, &s).unwrap();
//! assert!(est.value.is_finite());
//! ```
//!
//! See the `examples/` directory for realistic end-to-end scenarios and
//! `DESIGN.md` / `EXPERIMENTS.md` for the paper-reproduction map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use datagen;
pub use dyadic;
pub use exact;
pub use fourwise;
pub use geometry;
pub use histograms;
pub use serve;
pub use sketch;

#[cfg(test)]
mod facade_tests {
    #[test]
    fn reexports_are_wired() {
        let iv = crate::geometry::Interval::new(2, 9);
        assert!(iv.contains(5));
        assert_eq!(crate::sketch::plan::pair_words_per_instance(1), 5);
        assert_eq!(crate::histograms::EulerHistogram::words_at_level(6), 36_481);
    }
}

//! Exact rectangle join counting.
//!
//! [`rect_join_count`] runs a sweep line over the x-axis with two Fenwick
//! trees over compressed y-endpoints, counting each overlapping pair exactly
//! once in `O((N + M) log (N + M))` — fast enough to ground-truth the
//! paper's 500K-rectangle experiments.
//!
//! [`nd_join_count`] generalizes to arbitrary dimensionality with a sweep
//! over dimension 0 and explicit checks of the remaining dimensions against
//! the active sets (output-insensitive but `O(active)` per event; fine for
//! the moderate sizes the dimensionality ablation uses).

use crate::fenwick::Fenwick;
use geometry::{Coord, HyperRect};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    R,
    S,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    x: Coord,
    /// Close events sort before open events at equal x, which excludes
    /// pairs that merely touch in x (strict overlap).
    is_open: bool,
    side: Side,
    idx: usize,
}

/// Active-set counter over one relation's y-intervals.
struct ActiveSet {
    bit_lo: Fenwick,
    bit_hi: Fenwick,
}

impl ActiveSet {
    fn new(slots: usize) -> Self {
        Self {
            bit_lo: Fenwick::new(slots),
            bit_hi: Fenwick::new(slots),
        }
    }

    fn insert(&mut self, lo_rank: usize, hi_rank: usize) {
        self.bit_lo.add(lo_rank, 1);
        self.bit_hi.add(hi_rank, 1);
    }

    fn remove(&mut self, lo_rank: usize, hi_rank: usize) {
        self.bit_lo.add(lo_rank, -1);
        self.bit_hi.add(hi_rank, -1);
    }

    /// Number of active members whose y-interval strictly overlaps
    /// `[lo, hi]` given the ranks of `hi` (exclusive) and `lo` (inclusive):
    /// `#{lo_s < hi} - #{hi_s <= lo}`.
    fn count_overlapping(&self, query_lo_rank: usize, query_hi_rank: usize) -> u64 {
        let lo_lt = self.bit_lo.prefix_sum_exclusive(query_hi_rank);
        let hi_le = self.bit_hi.prefix_sum(query_lo_rank);
        debug_assert!(lo_lt >= hi_le);
        (lo_lt - hi_le) as u64
    }
}

/// Exact 2-d spatial join cardinality `|R ⋈_o S|` (Definition 1 semantics:
/// the intersection must have positive area).
pub fn rect_join_count(r: &[HyperRect<2>], s: &[HyperRect<2>]) -> u64 {
    // Degenerate rectangles never overlap anything.
    let r: Vec<&HyperRect<2>> = r.iter().filter(|a| !a.is_degenerate()).collect();
    let s: Vec<&HyperRect<2>> = s.iter().filter(|a| !a.is_degenerate()).collect();
    if r.is_empty() || s.is_empty() {
        return 0;
    }

    // Compress y endpoints from both sets.
    let mut ys: Vec<Coord> = Vec::with_capacity(2 * (r.len() + s.len()));
    for a in r.iter().chain(s.iter()) {
        ys.push(a.range(1).lo());
        ys.push(a.range(1).hi());
    }
    ys.sort_unstable();
    ys.dedup();
    let rank = |v: Coord| ys.partition_point(|&y| y < v);

    let mut events: Vec<Event> = Vec::with_capacity(2 * (r.len() + s.len()));
    for (idx, a) in r.iter().enumerate() {
        events.push(Event {
            x: a.range(0).lo(),
            is_open: true,
            side: Side::R,
            idx,
        });
        events.push(Event {
            x: a.range(0).hi(),
            is_open: false,
            side: Side::R,
            idx,
        });
    }
    for (idx, a) in s.iter().enumerate() {
        events.push(Event {
            x: a.range(0).lo(),
            is_open: true,
            side: Side::S,
            idx,
        });
        events.push(Event {
            x: a.range(0).hi(),
            is_open: false,
            side: Side::S,
            idx,
        });
    }
    events.sort_unstable_by_key(|e| (e.x, e.is_open));

    let mut active_r = ActiveSet::new(ys.len());
    let mut active_s = ActiveSet::new(ys.len());
    let mut count = 0u64;

    for e in events {
        let rect = match e.side {
            Side::R => r[e.idx],
            Side::S => s[e.idx],
        };
        let lo_rank = rank(rect.range(1).lo());
        let hi_rank = rank(rect.range(1).hi());
        if e.is_open {
            // Query the *other* side first, then insert: pairs opening at the
            // same x are counted exactly once (by whichever opens later).
            match e.side {
                Side::R => {
                    count += active_s.count_overlapping(lo_rank, hi_rank);
                    active_r.insert(lo_rank, hi_rank);
                }
                Side::S => {
                    count += active_r.count_overlapping(lo_rank, hi_rank);
                    active_s.insert(lo_rank, hi_rank);
                }
            }
        } else {
            match e.side {
                Side::R => active_r.remove(lo_rank, hi_rank),
                Side::S => active_s.remove(lo_rank, hi_rank),
            }
        }
    }
    count
}

/// Exact d-dimensional spatial join cardinality via a dim-0 sweep with
/// explicit residual-dimension checks.
pub fn nd_join_count<const D: usize>(r: &[HyperRect<D>], s: &[HyperRect<D>]) -> u64 {
    let r: Vec<&HyperRect<D>> = r.iter().filter(|a| !a.is_degenerate()).collect();
    let s: Vec<&HyperRect<D>> = s.iter().filter(|a| !a.is_degenerate()).collect();
    if r.is_empty() || s.is_empty() {
        return 0;
    }
    let mut events: Vec<Event> = Vec::with_capacity(2 * (r.len() + s.len()));
    for (idx, a) in r.iter().enumerate() {
        events.push(Event {
            x: a.range(0).lo(),
            is_open: true,
            side: Side::R,
            idx,
        });
        events.push(Event {
            x: a.range(0).hi(),
            is_open: false,
            side: Side::R,
            idx,
        });
    }
    for (idx, a) in s.iter().enumerate() {
        events.push(Event {
            x: a.range(0).lo(),
            is_open: true,
            side: Side::S,
            idx,
        });
        events.push(Event {
            x: a.range(0).hi(),
            is_open: false,
            side: Side::S,
            idx,
        });
    }
    events.sort_unstable_by_key(|e| (e.x, e.is_open));

    // Active sets as dense slot maps for O(1) insert/remove.
    let mut active_r: Vec<usize> = Vec::new();
    let mut active_s: Vec<usize> = Vec::new();
    let mut pos_r = vec![usize::MAX; r.len()];
    let mut pos_s = vec![usize::MAX; s.len()];
    let mut count = 0u64;

    let rest_overlap = |a: &HyperRect<D>, b: &HyperRect<D>| -> bool {
        (1..D).all(|i| a.range(i).overlaps(&b.range(i)))
    };

    for e in events {
        match (e.is_open, e.side) {
            (true, Side::R) => {
                let a = r[e.idx];
                count += active_s.iter().filter(|&&j| rest_overlap(a, s[j])).count() as u64;
                pos_r[e.idx] = active_r.len();
                active_r.push(e.idx);
            }
            (true, Side::S) => {
                let b = s[e.idx];
                count += active_r.iter().filter(|&&j| rest_overlap(r[j], b)).count() as u64;
                pos_s[e.idx] = active_s.len();
                active_s.push(e.idx);
            }
            (false, Side::R) => {
                let p = pos_r[e.idx];
                let last = *active_r.last().expect("close without open");
                active_r.swap_remove(p);
                if p < active_r.len() {
                    pos_r[last] = p;
                }
            }
            (false, Side::S) => {
                let p = pos_s[e.idx];
                let last = *active_s.last().expect("close without open");
                active_s.swap_remove(p);
                if p < active_s.len() {
                    pos_s[last] = p;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use geometry::{rect2, Interval};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(rng: &mut StdRng, n: usize, domain: u64, max_len: u64) -> Vec<HyperRect<2>> {
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0..domain);
                let y = rng.gen_range(0..domain);
                let w = rng.gen_range(0..=max_len);
                let h = rng.gen_range(0..=max_len);
                rect2(x, (x + w).min(domain), y, (y + h).min(domain))
            })
            .collect()
    }

    #[test]
    fn hand_cases() {
        let r = vec![rect2(0, 10, 0, 10)];
        // strict overlap
        assert_eq!(rect_join_count(&r, &[rect2(5, 15, 5, 15)]), 1);
        // x touch only
        assert_eq!(rect_join_count(&r, &[rect2(10, 20, 0, 10)]), 0);
        // y touch only
        assert_eq!(rect_join_count(&r, &[rect2(0, 10, 10, 20)]), 0);
        // corner touch
        assert_eq!(rect_join_count(&r, &[rect2(10, 20, 10, 20)]), 0);
        // containment
        assert_eq!(rect_join_count(&r, &[rect2(2, 8, 2, 8)]), 1);
        // identical
        assert_eq!(rect_join_count(&r, &[rect2(0, 10, 0, 10)]), 1);
        // degenerate line
        assert_eq!(rect_join_count(&r, &[rect2(5, 5, 0, 10)]), 0);
    }

    #[test]
    fn equal_open_coordinates_counted_once() {
        // Both rectangles open at x=0; the pair must be counted exactly once.
        let r = vec![rect2(0, 10, 0, 10)];
        let s = vec![rect2(0, 6, 3, 20)];
        assert_eq!(rect_join_count(&r, &s), 1);
        // And symmetric multi-object variant.
        let r = vec![rect2(0, 10, 0, 10), rect2(0, 4, 0, 4)];
        let s = vec![rect2(0, 6, 3, 20), rect2(0, 9, 1, 2)];
        assert_eq!(rect_join_count(&r, &s), naive::join_count(&r, &s));
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..30 {
            let r = random_rects(&mut rng, 80, 120, 30);
            let s = random_rects(&mut rng, 60, 120, 30);
            assert_eq!(
                rect_join_count(&r, &s),
                naive::join_count(&r, &s),
                "round {round}"
            );
        }
    }

    #[test]
    fn randomized_small_coordinates_heavy_ties() {
        // Tiny domain forces many shared endpoints and touching pairs.
        let mut rng = StdRng::seed_from_u64(78);
        for round in 0..40 {
            let r = random_rects(&mut rng, 50, 8, 5);
            let s = random_rects(&mut rng, 50, 8, 5);
            assert_eq!(
                rect_join_count(&r, &s),
                naive::join_count(&r, &s),
                "round {round}"
            );
        }
    }

    #[test]
    fn nd_matches_naive_3d() {
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..20 {
            let gen3 = |rng: &mut StdRng, n: usize| -> Vec<HyperRect<3>> {
                (0..n)
                    .map(|_| {
                        let mut ranges = [Interval::point(0); 3];
                        for r in &mut ranges {
                            let a = rng.gen_range(0u64..40);
                            let len = rng.gen_range(0u64..12);
                            *r = Interval::new(a, (a + len).min(40));
                        }
                        HyperRect::new(ranges)
                    })
                    .collect()
            };
            let r = gen3(&mut rng, 50);
            let s = gen3(&mut rng, 40);
            assert_eq!(nd_join_count(&r, &s), naive::join_count(&r, &s));
        }
    }

    #[test]
    fn nd_matches_rect_join_2d() {
        let mut rng = StdRng::seed_from_u64(80);
        let r = random_rects(&mut rng, 100, 60, 20);
        let s = random_rects(&mut rng, 100, 60, 20);
        assert_eq!(nd_join_count(&r, &s), rect_join_count(&r, &s));
    }

    #[test]
    fn empty_and_degenerate_only() {
        assert_eq!(rect_join_count(&[], &[rect2(0, 1, 0, 1)]), 0);
        let degen = vec![rect2(3, 3, 0, 9), rect2(0, 9, 4, 4)];
        assert_eq!(rect_join_count(&degen, &[rect2(0, 9, 0, 9)]), 0);
        assert_eq!(nd_join_count::<2>(&degen, &[rect2(0, 9, 0, 9)]), 0);
    }
}

//! The sharded sketch store: partitioned ingest with an epoch-swapped,
//! lock-free read path.
//!
//! A [`ShardedStore`] partitions the keyed domain (dimension 0 of the data
//! coordinate space) across `N` [`SketchShard`]s along a dyadic-aligned
//! [`DomainPartition`], so shard boundaries sit on dyadic node boundaries
//! and range/stab covers split cleanly at them (see
//! [`dyadic::partition`]). Every shard shares one [`SketchSchema`], word
//! set and endpoint policy — the precondition for the router's exact
//! counter-level merge (sketches are linear, so the fold of all shard
//! counters is bit-identical to one unsharded sketch of the same objects).
//!
//! ## Epoch/swap concurrency
//!
//! Readers never lock on the hot path. The store publishes immutable
//! [`StoreEpoch`]s (an `Arc`'d shard vector **plus the partition that
//! routed it** — topology is epoch state, so a rebalance cutover is the
//! same single atomic swap as an ingest batch); ingest **builds into
//! staging shards** — clones of just the shards a batch touches —
//! assembles a new epoch, and atomically swaps it in. An epoch *tag* is
//! mirrored in an `AtomicU64` outside the lock: a reader holding a cached
//! `Arc<StoreEpoch>` (every pooled [`crate::context::WorkerContext`] does)
//! revalidates with a single atomic load and only touches the `RwLock` on
//! an actual epoch change — steady-state queries are one atomic load plus
//! the estimate, with zero locks and zero allocation.
//!
//! Writers are serialized by the swap lock; batches are atomic (readers
//! see either the previous epoch or the fully ingested one, never a
//! partial batch).
//!
//! ## The update log
//!
//! Stores opted in via [`ShardedStore::with_log`] journal every published
//! batch into an [`UpdateLog`]. [`LogRetention::Full`] is what the
//! rebalancer replays to rebuild shards across a topology change (see
//! [`crate::rebalance`]); [`LogRetention::Entries`] gives replicas a
//! bounded catch-up window (see [`crate::replica`]). The default,
//! [`LogRetention::None`], journals nothing and costs nothing.

use crate::shard::SketchShard;
use dyadic::DomainPartition;
use geometry::HyperRect;
use serde::{Deserialize, Serialize};
use sketch::{
    restore_schema, restore_sketch_with_schema, snapshot_sketch, EndpointPolicy, LogRetention,
    Result, SketchError, SketchSchema, SketchSet, SketchSnapshot, UpdateLog, Word,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

static STORE_COUNTER: AtomicU64 = AtomicU64::new(1);

/// An immutable published state of a [`ShardedStore`]: the shard vector
/// and routing partition of one generation. Readers clone the `Arc` once
/// per epoch change and evaluate whole queries against it without further
/// synchronization.
#[derive(Debug)]
pub struct StoreEpoch<const D: usize> {
    epoch: u64,
    partition: DomainPartition,
    shards: Vec<Arc<SketchShard<D>>>,
}

impl<const D: usize> StoreEpoch<D> {
    pub(crate) fn assemble(
        epoch: u64,
        partition: DomainPartition,
        shards: Vec<Arc<SketchShard<D>>>,
    ) -> Self {
        debug_assert_eq!(partition.shards(), shards.len());
        Self {
            epoch,
            partition,
            shards,
        }
    }

    /// The generation number (strictly increasing per published change —
    /// ingest batch or topology cutover).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The partition that routed this generation's shards. Topology is
    /// epoch state: a query evaluated against one epoch sees one
    /// partition, never a half-rebalanced mixture.
    pub fn partition(&self) -> &DomainPartition {
        &self.partition
    }

    /// The shards of this generation.
    pub fn shards(&self) -> &[Arc<SketchShard<D>>] {
        &self.shards
    }

    /// Net objects summarized across all shards.
    pub fn total_len(&self) -> i64 {
        self.shards.iter().map(|s| s.sketch().len()).sum()
    }
}

/// A sharded sketch store over one schema; see the module docs.
#[derive(Debug)]
pub struct ShardedStore<const D: usize> {
    id: u64,
    schema: Arc<SketchSchema<D>>,
    words: Arc<Vec<Word<D>>>,
    policy: EndpointPolicy,
    /// Admissible data-domain bits per dimension (schema bits minus the
    /// policy's transform headroom) — the ingest validation bound.
    data_bits: [u32; D],
    current: RwLock<Arc<StoreEpoch<D>>>,
    /// Epoch tag mirrored outside the lock for the reader fast path.
    epoch_tag: AtomicU64,
    /// Serializes ingest batches and topology changes (clone → update →
    /// swap).
    writer: Mutex<()>,
    /// Journal of published batches; retention [`LogRetention::None`]
    /// unless [`ShardedStore::with_log`] opted in.
    log: Mutex<UpdateLog<D>>,
}

impl<const D: usize> ShardedStore<D> {
    /// Creates an empty store of `shards` shards sharing `schema`, `words`
    /// and `policy` (the effective shard count is clamped to the dimension-0
    /// domain size; see [`DomainPartition::new`]).
    pub fn new(
        schema: Arc<SketchSchema<D>>,
        words: Arc<Vec<Word<D>>>,
        policy: EndpointPolicy,
        shards: usize,
    ) -> Self {
        let data_bits: [u32; D] =
            std::array::from_fn(|i| schema.dims()[i].sketch_bits - policy.extra_bits());
        let partition = DomainPartition::new(data_bits[0], shards);
        let shards: Vec<Arc<SketchShard<D>>> = (0..partition.shards())
            .map(|_| {
                Arc::new(SketchShard::new(SketchSet::new(
                    Arc::clone(&schema),
                    Arc::clone(&words),
                    policy,
                )))
            })
            .collect();
        Self {
            id: STORE_COUNTER.fetch_add(1, Ordering::Relaxed),
            schema,
            words,
            policy,
            data_bits,
            current: RwLock::new(Arc::new(StoreEpoch::assemble(1, partition, shards))),
            epoch_tag: AtomicU64::new(1),
            writer: Mutex::new(()),
            log: Mutex::new(UpdateLog::new(LogRetention::None)),
        }
    }

    /// Creates a store shaped like an estimator's sketch (same schema,
    /// words and policy), so router answers stay combinable with — and
    /// bit-comparable to — sketches the estimator builds directly.
    pub fn like(prototype: &SketchSet<D>, shards: usize) -> Self {
        Self::new(
            Arc::clone(prototype.schema()),
            Arc::clone(prototype.words()),
            prototype.policy(),
            shards,
        )
    }

    /// Opts the store into journaling published batches under `retention`
    /// (builder style — chain after [`ShardedStore::new`] or
    /// [`ShardedStore::like`]). [`LogRetention::Full`] enables topology
    /// changes, [`LogRetention::Entries`] bounds memory for replica
    /// catch-up. The truncation floor carries over, so re-configuring a
    /// restored store keeps its history honest.
    pub fn with_log(self, retention: LogRetention) -> Self {
        {
            let mut log = self.log.lock().expect("log lock poisoned");
            *log = UpdateLog::new_with_floor(retention, log.floor());
        }
        self
    }

    /// The journal's retention policy.
    pub fn log_retention(&self) -> LogRetention {
        self.log().retention()
    }

    /// Process-unique store identity (worker caches key on it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<SketchSchema<D>> {
        &self.schema
    }

    /// The dimension-0 partition currently routing objects to shards (a
    /// clone of the published epoch's — topology is epoch state and may
    /// change at the next rebalance cutover).
    pub fn partition(&self) -> DomainPartition {
        self.load().partition.clone()
    }

    /// Current shard count (like [`ShardedStore::partition`], epoch state).
    pub fn shard_count(&self) -> usize {
        self.load().shards.len()
    }

    /// An empty sketch over the store's schema/words/policy — the merge
    /// target shape workers allocate once and reuse.
    pub fn empty_sketch(&self) -> SketchSet<D> {
        SketchSet::new(
            Arc::clone(&self.schema),
            Arc::clone(&self.words),
            self.policy,
        )
    }

    /// An empty shard over the store's schema (staging target for
    /// rebalance replays).
    pub(crate) fn empty_shard(&self) -> SketchShard<D> {
        SketchShard::new(self.empty_sketch())
    }

    /// The current epoch tag without taking any lock (reader fast path:
    /// compare against a cached epoch's tag).
    pub fn epoch_tag(&self) -> u64 {
        self.epoch_tag.load(Ordering::Acquire)
    }

    /// The current published epoch (brief read lock to clone the `Arc`;
    /// pooled workers cache the result and revalidate by tag instead of
    /// calling this per query).
    pub fn load(&self) -> Arc<StoreEpoch<D>> {
        Arc::clone(&self.current.read().expect("store lock poisoned"))
    }

    /// Serializes this caller against ingest and other topology changes.
    pub(crate) fn writer_lock(&self) -> MutexGuard<'_, ()> {
        self.writer.lock().expect("writer lock poisoned")
    }

    /// The update journal.
    pub(crate) fn log(&self) -> MutexGuard<'_, UpdateLog<D>> {
        self.log.lock().expect("log lock poisoned")
    }

    /// Publishes `next` as the current epoch: swap behind the write lock,
    /// then advance the tag — a reader observing the new tag will find (at
    /// least) the new epoch behind the lock. Callers hold the writer lock.
    pub(crate) fn publish(&self, next: Arc<StoreEpoch<D>>) {
        let epoch = next.epoch;
        *self.current.write().expect("store lock poisoned") = next;
        self.epoch_tag.store(epoch, Ordering::Release);
    }

    /// Inserts a batch; see [`ShardedStore::update_slice`].
    pub fn insert_slice(&self, rects: &[HyperRect<D>]) -> Result<()> {
        self.update_slice(rects, 1)
    }

    /// Deletes a batch; see [`ShardedStore::update_slice`].
    pub fn delete_slice(&self, rects: &[HyperRect<D>]) -> Result<()> {
        self.update_slice(rects, -1)
    }

    /// Applies one signed update per rectangle, routed to shards by the
    /// dimension-0 lower endpoint, and publishes the result as one new
    /// epoch. Which shard an object lands in never changes any *exact-mode*
    /// router answer (counter merges are linear); routing only shapes
    /// coverage locality for pruned-mode queries.
    ///
    /// All rectangles are validated up front: either the whole batch
    /// becomes visible atomically or the store is untouched.
    pub fn update_slice(&self, rects: &[HyperRect<D>], delta: i64) -> Result<()> {
        for r in rects {
            self.validate(r)?;
        }
        let _writer = self.writer_lock();
        let cur = self.load();
        // Route into per-shard groups along this epoch's partition.
        let mut groups: Vec<Vec<HyperRect<D>>> = vec![Vec::new(); cur.shards.len()];
        for r in rects {
            groups[cur.partition.shard_of(r.range(0).lo())].push(*r);
        }
        // Build staging shards for the touched partitions only.
        let mut shards = cur.shards.clone();
        for (s, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut staging = (*shards[s]).clone();
            staging.apply(group, delta).expect("validated above");
            shards[s] = Arc::new(staging);
        }
        let next = Arc::new(StoreEpoch::assemble(
            cur.epoch + 1,
            cur.partition.clone(),
            shards,
        ));
        self.publish(Arc::clone(&next));
        // Journal under the new epoch, still inside the writer lock so
        // entries land in epoch order. A no-retention log only advances
        // its floor — skip copying the batch.
        let mut log = self.log();
        let batch = if matches!(log.retention(), LogRetention::None) {
            Arc::new(Vec::new())
        } else {
            Arc::new(rects.to_vec())
        };
        log.record(next.epoch, delta, batch);
        Ok(())
    }

    fn validate(&self, rect: &HyperRect<D>) -> Result<()> {
        for dim in 0..D {
            let max = (1u64 << self.data_bits[dim]) - 1;
            if rect.range(dim).hi() > max {
                return Err(SketchError::DomainOverflow {
                    coord: rect.range(dim).hi(),
                    max,
                    dim,
                });
            }
        }
        Ok(())
    }

    /// Captures the current epoch as a self-contained snapshot.
    pub fn snapshot(&self) -> StoreSnapshot {
        let epoch = self.load();
        StoreSnapshot {
            epoch: epoch.epoch,
            boundaries: epoch.partition.boundaries().to_vec(),
            shards: epoch
                .shards
                .iter()
                .map(|s| snapshot_sketch(s.sketch()))
                .collect(),
            coverage: epoch
                .shards
                .iter()
                .map(|s| {
                    s.coverage()
                        .map(|c| (0..D).map(|d| (c.range(d).lo(), c.range(d).hi())).collect())
                })
                .collect(),
            updates: epoch.shards.iter().map(|s| s.updates()).collect(),
        }
    }

    /// Restores a store from a snapshot. All shards are rebuilt against one
    /// freshly restored schema, so they stay mutually mergeable — and
    /// combinable with sketches restored *from the same snapshot's* schema.
    pub fn restore(snap: &StoreSnapshot) -> Result<Self> {
        let first = snap.shards.first().ok_or(SketchError::InvalidParameter(
            "store snapshot carries no shards",
        ))?;
        let schema = restore_schema::<D>(first.schema())?;
        Self::restore_with_schema(snap, schema)
    }

    /// Restores a store from a snapshot **against a caller-supplied
    /// schema** — the replica path, where every node must share the
    /// cluster's schema rather than trust whatever a snapshot carries.
    /// Every shard is validated against `schema` as it is rebuilt
    /// ([`SketchError::SchemaMismatch`] on any disagreement), so a
    /// mismatched snapshot fails cleanly before any state is published.
    pub fn restore_with_schema(snap: &StoreSnapshot, schema: Arc<SketchSchema<D>>) -> Result<Self> {
        if snap.shards.is_empty() {
            return Err(SketchError::InvalidParameter(
                "store snapshot carries no shards",
            ));
        }
        if snap.coverage.len() != snap.shards.len() || snap.updates.len() != snap.shards.len() {
            return Err(SketchError::InvalidParameter(
                "store snapshot metadata arity mismatch",
            ));
        }
        let mut shards = Vec::with_capacity(snap.shards.len());
        for (i, shard_snap) in snap.shards.iter().enumerate() {
            let sketch = restore_sketch_with_schema(shard_snap, Arc::clone(&schema))?;
            let coverage = match &snap.coverage[i] {
                None => None,
                Some(ranges) => {
                    if ranges.len() != D {
                        return Err(SketchError::InvalidParameter(
                            "store snapshot coverage has wrong dimensionality",
                        ));
                    }
                    Some(HyperRect::new(std::array::from_fn(|d| {
                        geometry::Interval::new(ranges[d].0, ranges[d].1)
                    })))
                }
            };
            shards.push(Arc::new(SketchShard::with_restored_meta(
                sketch,
                coverage,
                snap.updates[i],
            )));
        }
        let proto = shards[0].sketch();
        let words = Arc::clone(proto.words());
        let policy = proto.policy();
        for s in &shards {
            if *s.sketch().words() != words || s.sketch().policy() != policy {
                return Err(SketchError::WordMismatch);
            }
        }
        let data_bits: [u32; D] =
            std::array::from_fn(|i| schema.dims()[i].sketch_bits - policy.extra_bits());
        let partition = DomainPartition::from_boundaries(data_bits[0], snap.boundaries.clone())
            .ok_or(SketchError::InvalidParameter(
                "store snapshot carries an invalid partition",
            ))?;
        if partition.shards() != shards.len() {
            return Err(SketchError::InvalidParameter(
                "store snapshot partition does not match its shard count",
            ));
        }
        // The restored store resumes at the snapshot's epoch; its journal
        // starts truncated there — updates before the snapshot exist only
        // inside it.
        let epoch = snap.epoch.max(1);
        Ok(Self {
            id: STORE_COUNTER.fetch_add(1, Ordering::Relaxed),
            schema,
            words,
            policy,
            data_bits,
            current: RwLock::new(Arc::new(StoreEpoch::assemble(epoch, partition, shards))),
            epoch_tag: AtomicU64::new(epoch),
            writer: Mutex::new(()),
            log: Mutex::new(UpdateLog::new_with_floor(LogRetention::None, epoch)),
        })
    }
}

/// Serializable form of a [`ShardedStore`]: per-shard sketch snapshots
/// (sharing one schema on restore) plus the shard bookkeeping the pruned
/// router mode depends on, the partition boundaries, and the epoch the
/// snapshot captured — the point a replica tails the update log from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// The epoch this snapshot captured.
    epoch: u64,
    /// The partition's shard start coordinates
    /// ([`DomainPartition::boundaries`]).
    boundaries: Vec<u64>,
    shards: Vec<SketchSnapshot>,
    /// Per shard, the coverage box as `(lo, hi)` per dimension (`None` for
    /// untouched shards).
    coverage: Vec<Option<Vec<(u64, u64)>>>,
    /// Per shard, the gross update count.
    updates: Vec<u64>,
}

impl StoreSnapshot {
    /// The epoch this snapshot captured — where replica catch-up resumes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use sketch::{ie_words, BoostShape, DimSpec};

    fn store(shards: usize, seed: u64) -> ShardedStore<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            fourwise::XiKind::Bch,
            BoostShape::new(13, 3),
            [DimSpec::dyadic(8); 2],
        );
        ShardedStore::new(
            schema,
            Arc::new(ie_words::<2>()),
            EndpointPolicy::Raw,
            shards,
        )
    }

    fn rects(n: usize, seed: u64) -> Vec<HyperRect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0..200u64);
                let y = rng.gen_range(0..200u64);
                rect2(
                    x,
                    x + rng.gen_range(1..50u64),
                    y,
                    y + rng.gen_range(1..50u64),
                )
            })
            .collect()
    }

    #[test]
    fn ingest_swaps_epochs_and_matches_unsharded_counters() {
        let st = store(3, 1);
        assert_eq!(st.epoch_tag(), 1);
        let data = rects(120, 2);
        st.insert_slice(&data).unwrap();
        assert_eq!(st.epoch_tag(), 2);
        st.delete_slice(&data[..40]).unwrap();
        assert_eq!(st.epoch_tag(), 3);

        // Folding all shards reproduces an unsharded sketch bit-for-bit.
        let mut oracle = st.empty_sketch();
        oracle.insert_slice(&data).unwrap();
        oracle.delete_slice(&data[..40]).unwrap();
        let mut merged = st.empty_sketch();
        let epoch = st.load();
        for s in epoch.shards() {
            merged.merge_from(s.sketch()).unwrap();
        }
        assert_eq!(merged.len(), oracle.len());
        assert_eq!(epoch.total_len(), oracle.len());
        for inst in 0..st.schema().instances() {
            assert_eq!(
                merged.instance_counters(inst),
                oracle.instance_counters(inst)
            );
        }
    }

    #[test]
    fn objects_route_by_dim0_lower_endpoint() {
        let st = store(4, 3);
        let r = rect2(200, 255, 0, 10); // lo = 200 → last shard
        st.insert_slice(&[r]).unwrap();
        let epoch = st.load();
        let expect = st.partition().shard_of(200);
        for (i, s) in epoch.shards().iter().enumerate() {
            assert_eq!(s.is_untouched(), i != expect, "shard {i}");
        }
    }

    #[test]
    fn failed_batch_leaves_store_and_epoch_untouched() {
        let st = store(3, 4);
        let mut data = rects(10, 5);
        data.push(rect2(0, 999, 0, 5)); // out of domain
        assert!(st.insert_slice(&data).is_err());
        assert_eq!(st.epoch_tag(), 1);
        assert!(st.load().shards().iter().all(|s| s.is_untouched()));
    }

    #[test]
    fn old_epochs_stay_readable_after_swap() {
        let st = store(2, 6);
        let before = st.load();
        st.insert_slice(&rects(30, 7)).unwrap();
        let after = st.load();
        assert_eq!(before.epoch(), 1);
        assert_eq!(after.epoch(), 2);
        // The pre-swap epoch still answers from its own shards.
        assert_eq!(before.total_len(), 0);
        assert_eq!(after.total_len(), 30);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let st = store(3, 8);
        let data = rects(60, 9);
        st.insert_slice(&data).unwrap();
        st.delete_slice(&data[..10]).unwrap();
        let snap = st.snapshot();
        assert_eq!(snap.epoch(), 3);
        let json = serde_json::to_string(&snap).unwrap();
        let back: StoreSnapshot = serde_json::from_str(&json).unwrap();
        let restored: ShardedStore<2> = ShardedStore::restore(&back).unwrap();
        assert_eq!(restored.shard_count(), st.shard_count());
        assert_eq!(restored.partition(), st.partition());
        assert_eq!(restored.epoch_tag(), 3);
        let (a, b) = (st.load(), restored.load());
        for (x, y) in a.shards().iter().zip(b.shards().iter()) {
            assert_eq!(x.updates(), y.updates());
            assert_eq!(x.coverage(), y.coverage());
            assert_eq!(x.sketch().len(), y.sketch().len());
            for inst in 0..st.schema().instances() {
                assert_eq!(
                    x.sketch().instance_counters(inst),
                    y.sketch().instance_counters(inst)
                );
            }
        }
        // Restored shards share one schema: still mergeable.
        let mut merged = restored.empty_sketch();
        for s in b.shards() {
            merged.merge_from(s.sketch()).unwrap();
        }
        assert_eq!(merged.len(), 50);
    }

    #[test]
    fn restore_with_schema_rejects_mismatched_snapshots() {
        // Satellite: restoring against the wrong schema must error (the
        // per-shard validation inside `restore_sketch_with_schema`), not
        // hand back a corrupt store.
        let st = store(2, 11);
        st.insert_slice(&rects(20, 12)).unwrap();
        let snap = st.snapshot();
        let mut other_rng = StdRng::seed_from_u64(999);
        let other = SketchSchema::<2>::new(
            &mut other_rng,
            fourwise::XiKind::Bch,
            BoostShape::new(13, 3),
            [DimSpec::dyadic(8); 2],
        );
        assert!(matches!(
            ShardedStore::restore_with_schema(&snap, other),
            Err(SketchError::SchemaMismatch)
        ));
        // The matching schema restores fine.
        let ok = ShardedStore::restore_with_schema(&snap, Arc::clone(st.schema())).unwrap();
        assert_eq!(ok.load().total_len(), 20);
    }

    #[test]
    fn update_log_journals_under_published_epochs() {
        let st = store(2, 13).with_log(LogRetention::Full);
        let data = rects(12, 14);
        st.insert_slice(&data).unwrap();
        st.delete_slice(&data[..4]).unwrap();
        let log = st.log();
        assert!(log.is_complete());
        let entries: Vec<(u64, i64, usize)> = log
            .entries()
            .map(|e| (e.epoch(), e.delta(), e.rects().len()))
            .collect();
        assert_eq!(entries, vec![(2, 1, 12), (3, -1, 4)]);
    }

    #[test]
    fn restored_stores_log_is_truncated_at_the_snapshot() {
        let st = store(2, 15).with_log(LogRetention::Full);
        st.insert_slice(&rects(10, 16)).unwrap();
        let restored = ShardedStore::<2>::restore(&st.snapshot())
            .unwrap()
            .with_log(LogRetention::Full);
        // History before the snapshot lives only in the snapshot: the
        // journal reports itself truncated there even after opting in.
        let log = restored.log();
        assert!(!log.is_complete());
        assert_eq!(log.floor(), 2);
    }

    #[test]
    fn shard_count_clamps_to_domain() {
        let st = store(1000, 10);
        assert_eq!(st.shard_count(), 256);
    }
}

//! Bench: estimation latency (combine counters, no data access) against the
//! cost of exact evaluation — the quantity a query optimizer actually
//! trades off when it consults a sketch instead of running the join.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::SyntheticSpec;
use geometry::HyperRect;
use histograms::{EulerHistogram, GeometricHistogram, GridSpec};
use rand::SeedableRng;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan};

const BITS: u32 = 14;

fn bench_estimates(c: &mut Criterion) {
    let r: Vec<HyperRect<2>> = SyntheticSpec::paper(20_000, BITS, 0.0, 5).generate();
    let s: Vec<HyperRect<2>> = SyntheticSpec::paper(20_000, BITS, 0.0, 6).generate();
    let mean_extent = 3.0
        * r.iter()
            .map(|x| (x.range(0).length() + x.range(1).length()) as f64 / 2.0)
            .sum::<f64>()
        / r.len() as f64;
    let max_level = plan::adaptive_max_level(mean_extent, BITS + 2);

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let config = SketchConfig::new(200, 5).with_max_level(max_level);
    let join = SpatialJoin::<2>::new(&mut rng, config, [BITS, BITS], EndpointStrategy::Transform);
    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_r, &r, 8).unwrap();
    par_insert_batch(&mut sk_s, &s, 8).unwrap();

    let spec = GridSpec::new(BITS, 4);
    let mut eh_r = EulerHistogram::new(spec);
    let mut eh_s = EulerHistogram::new(spec);
    let mut gh_r = GeometricHistogram::new(spec);
    let mut gh_s = GeometricHistogram::new(spec);
    for x in &r {
        eh_r.insert(x);
        gh_r.insert(x);
    }
    for x in &s {
        eh_s.insert(x);
        gh_s.insert(x);
    }

    let mut group = c.benchmark_group("join_size_query");
    group.bench_function("sketch_estimate_1000inst", |b| {
        b.iter(|| {
            join.estimate(black_box(&sk_r), black_box(&sk_s))
                .unwrap()
                .value
        })
    });
    group.bench_function("euler_histogram_L4", |b| {
        b.iter(|| eh_r.estimate_join(black_box(&eh_s)))
    });
    group.bench_function("geometric_histogram_L4", |b| {
        b.iter(|| gh_r.estimate_join(black_box(&gh_s)))
    });
    group.bench_function("exact_sweep_20k_x_20k", |b| {
        b.iter(|| exact::rect_join_count(black_box(&r), black_box(&s)))
    });
    group.finish();

    // Self-join estimation (feeds the Theorem-1 planner).
    let mut group = c.benchmark_group("self_join");
    group.bench_function("sketched_sj_estimate", |b| {
        b.iter(|| sketch::selfjoin::estimate_self_join(black_box(&sk_r)).value)
    });
    group.finish();
}

criterion_group!(benches, bench_estimates);
criterion_main!(benches);

//! Ablation A5: the curse of dimensionality (Section 6.1).
//!
//! Runs the hyper-rectangle join estimator for d = 1..4 at a fixed
//! per-dataset word budget and reports error, atomic-sketch count and
//! update cost. Expected shape: the number of atomic sketches per instance
//! doubles per dimension (2^d), self-join mass grows, and accuracy at fixed
//! space degrades — "our technique suffers from the curse of
//! dimensionality, like any other estimation or indexing technique".
//!
//! Usage: cargo run --release -p spatial-bench --bin dimensionality
//!   [-- --size 10000] [--trials 3] [--threads N]

use geometry::{HyperRect, Interval};
use rand::Rng as _;
use rand::SeedableRng;
use serde::Serialize;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, BoostShape};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::{default_threads, mean_sketch_extent};
use std::time::Instant;

fn gen_rects<const D: usize>(n: usize, bits: u32, mean_len: u64, seed: u64) -> Vec<HyperRect<D>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let domain = 1u64 << bits;
    (0..n)
        .map(|_| {
            let mut ranges = [Interval::point(0); D];
            for r in ranges.iter_mut() {
                let lo = rng.gen_range(0..domain - mean_len - 1);
                let len = rng.gen_range(1..=2 * mean_len);
                *r = Interval::new(lo, (lo + len).min(domain - 1));
            }
            HyperRect::new(ranges)
        })
        .collect()
}

#[derive(Serialize)]
struct Row {
    d: u32,
    truth: u64,
    rel_err: f64,
    instances: usize,
    words_per_instance: usize,
    build_ms: f64,
}

fn run_dim<const D: usize>(
    n: usize,
    bits: u32,
    words_budget: f64,
    trials: u32,
    threads: usize,
) -> Row {
    let mean_len = (1u64 << (bits / 2)).max(2);
    let r: Vec<HyperRect<D>> = gen_rects(n, bits, mean_len, 110 + D as u64);
    let s: Vec<HyperRect<D>> = gen_rects(n, bits, mean_len, 120 + D as u64);
    let truth = exact::nd_join_count(&r, &s);
    let truth_f = truth as f64;
    let instances = plan::instances_for_dataset_words(D as u32, words_budget).max(5);
    let k2 = 5;
    let shape = BoostShape::new((instances / k2).max(1), k2);
    let max_level = plan::adaptive_max_level(mean_sketch_extent(&[&r, &s]), bits + 2);

    let mut err_sum = 0.0;
    let mut build_ms = 0.0;
    let mut words_per_instance = 0;
    for t in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10_000 + 7 * t as u64 + D as u64);
        let config = SketchConfig {
            kind: fourwise::XiKind::Bch,
            shape,
            max_level: Some(max_level),
        };
        let join = SpatialJoin::<D>::new(&mut rng, config, [bits; D], EndpointStrategy::Transform);
        let mut sk_r = join.new_sketch_r();
        let mut sk_s = join.new_sketch_s();
        let t0 = Instant::now();
        par_insert_batch(&mut sk_r, &r, threads).expect("R");
        par_insert_batch(&mut sk_s, &s, threads).expect("S");
        build_ms += t0.elapsed().as_secs_f64() * 1000.0;
        words_per_instance = sk_r.words().len();
        err_sum += rel_error(
            join.estimate(&sk_r, &sk_s).expect("estimate").value,
            truth_f,
        );
    }
    Row {
        d: D as u32,
        truth,
        rel_err: err_sum / trials as f64,
        instances: shape.instances(),
        words_per_instance,
        build_ms: build_ms / trials as f64,
    }
}

fn main() {
    let args = Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let size: usize = args.get_or("size", 10_000).expect("--size");
    let trials: u32 = args.get_or("trials", 3).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");

    let bits = 10u32;
    let words = 4000.0;
    println!("# A5 — dimensionality (size {size}, domain 2^{bits}, {words} words/dataset)");
    let mut table = Table::new(
        "curse of dimensionality: join accuracy at fixed space",
        &[
            "d",
            "truth",
            "rel err",
            "instances",
            "2^d words/inst",
            "build ms",
        ],
    );
    let rows = vec![
        run_dim::<1>(size, bits, words, trials, threads),
        run_dim::<2>(size, bits, words, trials, threads),
        run_dim::<3>(size, bits, words, trials, threads),
        run_dim::<4>(size, bits, words, trials, threads),
    ];
    for row in &rows {
        table.push_row(vec![
            row.d.to_string(),
            row.truth.to_string(),
            format_num(row.rel_err),
            row.instances.to_string(),
            row.words_per_instance.to_string(),
            format_num(row.build_ms),
        ]);
        eprintln!(
            "  d={}: truth {}, err {:.4}, {} instances x {} words, build {:.0} ms",
            row.d, row.truth, row.rel_err, row.instances, row.words_per_instance, row.build_ms
        );
    }
    table.print();
    table.write_csv("dimensionality");
    let json = write_json("dimensionality", &rows);
    println!("wrote {}", json.display());
}

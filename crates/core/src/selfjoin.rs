//! Self-join sizes: the quantity that controls sketch accuracy.
//!
//! Every variance bound in the paper is of the form
//! `Var[Z] ≤ c · SJ(R) · SJ(S)` where `SJ(R) = Σ_w SJ(X_w)` sums the
//! self-join sizes `SJ(X_w) = E[X_w²] = Σ_δ f_w(δ)²` of the maintained
//! atomic sketches (Equations 5-6). This module computes them two ways:
//!
//! * [`exact_self_join`] — exactly, from the data, by materializing the
//!   cover-frequency maps (an analysis tool: `O(Σ |covers|^d)` space);
//! * [`estimate_self_join`] — from the sketch itself, using `E[X_w²] =
//!   SJ(X_w)` (the original AMS tug-of-war estimate). This is what a
//!   deployed system uses to feed the space planner, since the exact
//!   computation needs a pass over the data.

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::{Comp, Word};
use crate::estimator::Term;
use crate::query::QueryContext;
use crate::schema::DimSpec;
use dyadic::{interval_cover, point_cover, DyadicDomain, NodeId};
use geometry::transform::{shrink_interval, triple, triple_interval};
use geometry::{HyperRect, Interval};
use std::collections::HashMap;

/// Node lists contributed by one object to one component in one dimension.
fn comp_nodes(
    comp: Comp,
    iv: &Interval,
    policy: EndpointPolicy,
    domain: &DyadicDomain,
    max_level: u32,
) -> Vec<NodeId> {
    let (geo, leaf_lo, leaf_hi) = match policy {
        EndpointPolicy::Raw => (Some(*iv), iv.lo(), iv.hi()),
        EndpointPolicy::Tripled => (Some(triple_interval(iv)), triple(iv.lo()), triple(iv.hi())),
        EndpointPolicy::TripledShrunk => (shrink_interval(iv), triple(iv.lo()), triple(iv.hi())),
    };
    match comp {
        Comp::Interval => geo
            .map(|g| interval_cover(domain, &g, max_level))
            .unwrap_or_default(),
        Comp::Endpoints => geo
            .map(|g| {
                let mut v = point_cover(domain, g.lo(), max_level);
                v.extend(point_cover(domain, g.hi(), max_level));
                v
            })
            .unwrap_or_default(),
        Comp::LowerPoint => geo
            .map(|g| point_cover(domain, g.lo(), max_level))
            .unwrap_or_default(),
        Comp::UpperPoint => geo
            .map(|g| point_cover(domain, g.hi(), max_level))
            .unwrap_or_default(),
        Comp::LowerLeaf => vec![domain.leaf(leaf_lo)],
        Comp::UpperLeaf => vec![domain.leaf(leaf_hi)],
    }
}

/// Exact `SJ(X_w)` for one word over a data set.
///
/// Materializes the d-dimensional frequency map `f_w(δ_1, .., δ_d)`; memory
/// is the number of distinct node combinations, up to
/// `O(|data| · (2 log n)^d)` — fine for analysis-scale inputs, not meant for
/// the largest experiment datasets (use [`estimate_self_join`] there).
pub fn exact_word_self_join<const D: usize>(
    data: &[HyperRect<D>],
    dims: &[DimSpec; D],
    policy: EndpointPolicy,
    word: &Word<D>,
) -> u128 {
    let domains: [DyadicDomain; D] =
        std::array::from_fn(|i| DyadicDomain::new(dims[i].sketch_bits));
    let mut freq: HashMap<[NodeId; D], i64> = HashMap::new();
    let mut key = [0u64; D];
    for rect in data {
        let per_dim: [Vec<NodeId>; D] = std::array::from_fn(|i| {
            comp_nodes(
                word[i],
                &rect.range(i),
                policy,
                &domains[i],
                dims[i].max_level,
            )
        });
        if per_dim.iter().any(|v| v.is_empty()) {
            continue;
        }
        // Cartesian accumulation.
        let mut idx = [0usize; D];
        loop {
            for i in 0..D {
                key[i] = per_dim[i][idx[i]];
            }
            *freq.entry(key).or_insert(0) += 1;
            let mut dim = 0;
            loop {
                if dim == D {
                    break;
                }
                idx[dim] += 1;
                if idx[dim] < per_dim[dim].len() {
                    break;
                }
                idx[dim] = 0;
                dim += 1;
            }
            if dim == D {
                break;
            }
        }
    }
    freq.values()
        .map(|&f| (f as i128 * f as i128) as u128)
        .sum()
}

/// Exact `SJ(R) = Σ_w SJ(X_w)` over a word set.
pub fn exact_self_join<const D: usize>(
    data: &[HyperRect<D>],
    dims: &[DimSpec; D],
    policy: EndpointPolicy,
    words: &[Word<D>],
) -> u128 {
    words
        .iter()
        .map(|w| exact_word_self_join(data, dims, policy, w))
        .sum()
}

/// Sketch-based estimate of `SJ(X_w)` for one maintained word: the boosted
/// mean-median of `X_w²` across instances (`E[X_w²] = SJ(X_w)` exactly).
///
/// Convenience form of [`estimate_word_self_join_with`] building a
/// throwaway [`QueryContext`].
pub fn estimate_word_self_join<const D: usize>(sketch: &SketchSet<D>, word_idx: usize) -> Estimate {
    estimate_word_self_join_with(&mut QueryContext::new(), sketch, word_idx)
}

/// [`estimate_word_self_join`] with the caller's [`QueryContext`]: under the
/// batched kernel the squared counters are extracted as whole per-lane
/// estimate vectors per instance block and boosted straight from the
/// context's grid, with no per-estimate allocation.
pub fn estimate_word_self_join_with<const D: usize>(
    ctx: &mut QueryContext,
    sketch: &SketchSet<D>,
    word_idx: usize,
) -> Estimate {
    let terms = [Term {
        r_word: word_idx,
        s_word: word_idx,
        coeff: 1.0,
    }];
    ctx.pair_estimate(&terms, sketch, sketch)
}

/// Sketch-based estimate of `SJ(R) = Σ_w SJ(X_w)` over all maintained words.
///
/// Convenience form of [`estimate_self_join_with`] building a throwaway
/// [`QueryContext`].
pub fn estimate_self_join<const D: usize>(sketch: &SketchSet<D>) -> Estimate {
    estimate_self_join_with(&mut QueryContext::new(), sketch)
}

/// [`estimate_self_join`] with the caller's [`QueryContext`]; the sketch is
/// paired with itself on the diagonal word terms `Σ_w X_w · X_w`.
pub fn estimate_self_join_with<const D: usize>(
    ctx: &mut QueryContext,
    sketch: &SketchSet<D>,
) -> Estimate {
    let terms: Vec<Term> = (0..sketch.words().len())
        .map(|i| Term {
            r_word: i,
            s_word: i,
            coeff: 1.0,
        })
        .collect();
    ctx.pair_estimate(&terms, sketch, sketch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::ie_words;
    use crate::schema::{BoostShape, SketchSchema};
    use fourwise::XiKind;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use std::sync::Arc;

    #[test]
    fn exact_matches_dyadic_freq_module_1d() {
        // Cross-check against the independent implementation in the dyadic
        // crate for the 1-d I and E words.
        let data: Vec<HyperRect<1>> = vec![
            Interval::new(0, 12).into(),
            Interval::new(3, 40).into(),
            Interval::new(3, 40).into(),
            Interval::new(60, 61).into(),
        ];
        let ivs: Vec<Interval> = data.iter().map(|r| r.range(0)).collect();
        let dims = [DimSpec::dyadic(6)];
        let domain = DyadicDomain::new(6);
        let sj_i = exact_word_self_join(&data, &dims, EndpointPolicy::Raw, &[Comp::Interval]);
        let sj_e = exact_word_self_join(&data, &dims, EndpointPolicy::Raw, &[Comp::Endpoints]);
        let want_i =
            dyadic::freq::self_join_size(&dyadic::freq::interval_cover_freqs(&domain, &ivs, 6));
        let want_e =
            dyadic::freq::self_join_size(&dyadic::freq::endpoint_cover_freqs(&domain, &ivs, 6));
        assert_eq!(sj_i, want_i);
        assert_eq!(sj_e, want_e);
        assert_eq!(
            exact_self_join(&data, &dims, EndpointPolicy::Raw, &ie_words::<1>()),
            want_i + want_e
        );
    }

    #[test]
    fn exact_2d_brute_force_small() {
        // For a tiny input, verify SJ(X_II) against a direct double loop over
        // cover pairs.
        let data = vec![rect2(0, 3, 1, 2), rect2(2, 5, 0, 3)];
        let dims = [DimSpec::dyadic(3); 2];
        let d3 = DyadicDomain::new(3);
        let mut brute: u128 = 0;
        for a in &data {
            let ax = interval_cover(&d3, &a.range(0), 3);
            let ay = interval_cover(&d3, &a.range(1), 3);
            for b in &data {
                let bx = interval_cover(&d3, &b.range(0), 3);
                let by = interval_cover(&d3, &b.range(1), 3);
                let shared_x = ax.iter().filter(|n| bx.contains(n)).count() as u128;
                let shared_y = ay.iter().filter(|n| by.contains(n)).count() as u128;
                brute += shared_x * shared_y;
            }
        }
        let sj = exact_word_self_join(
            &data,
            &dims,
            EndpointPolicy::Raw,
            &[Comp::Interval, Comp::Interval],
        );
        assert_eq!(sj, brute);
    }

    #[test]
    fn sketched_estimate_tracks_exact() {
        let mut rng = StdRng::seed_from_u64(90);
        let schema = SketchSchema::<1>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(600, 5),
            [DimSpec::dyadic(8)],
        );
        let words = Arc::new(ie_words::<1>());
        let mut sk = SketchSet::new(schema, words.clone(), EndpointPolicy::Raw);
        let mut grng = StdRng::seed_from_u64(6);
        let data: Vec<HyperRect<1>> = (0..60)
            .map(|_| {
                let lo = grng.gen_range(0..200u64);
                Interval::new(lo, lo + grng.gen_range(1..40u64).min(255 - lo)).into()
            })
            .collect();
        for r in &data {
            sk.insert(r).unwrap();
        }
        let exact =
            exact_self_join(&data, &[DimSpec::dyadic(8)], EndpointPolicy::Raw, &words) as f64;
        let est = estimate_self_join(&sk);
        assert!(
            (est.value - exact).abs() / exact < 0.35,
            "estimated SJ {} vs exact {exact}",
            est.value
        );
    }

    #[test]
    fn leaf_words_and_shrunk_policy() {
        // Leaf components have exactly one node per object; SJ of the
        // lower-leaf word counts coincident lower endpoints quadratically.
        let data: Vec<HyperRect<1>> = vec![
            Interval::new(5, 9).into(),
            Interval::new(5, 30).into(),
            Interval::new(5, 31).into(),
            Interval::new(7, 8).into(),
        ];
        let dims = [DimSpec::dyadic(8)];
        let sj = exact_word_self_join(&data, &dims, EndpointPolicy::Raw, &[Comp::LowerLeaf]);
        // f(leaf 5) = 3, f(leaf 7) = 1 -> 9 + 1.
        assert_eq!(sj, 10);
        // Tripled-shrunk geometric word drops nothing here (all non-degenerate).
        let dims_t = [DimSpec::dyadic(10)];
        let sj_t = exact_word_self_join(
            &data,
            &dims_t,
            EndpointPolicy::TripledShrunk,
            &[Comp::Interval],
        );
        assert!(sj_t > 0);
        // Degenerate object contributes nothing to shrunk geometry.
        let degen: Vec<HyperRect<1>> = vec![Interval::point(4).into()];
        assert_eq!(
            exact_word_self_join(
                &degen,
                &dims_t,
                EndpointPolicy::TripledShrunk,
                &[Comp::Interval]
            ),
            0
        );
    }
}

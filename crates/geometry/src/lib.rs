//! # geometry — discrete spatial primitives
//!
//! Intervals, points and axis-aligned hyper-rectangles over a finite discrete
//! coordinate domain, with the exact predicates used by *Approximation
//! Techniques for Spatial Data* (Das, Gehrke, Riedewald; SIGMOD 2004):
//!
//! * [`Interval::overlaps`] / [`HyperRect::overlaps`] — the paper's spatial
//!   join predicate (Definition 1 / Figure 3 cases 3-6: full-dimensional
//!   intersection),
//! * [`Interval::overlaps_plus`] — the extended join of Definition 4
//!   (touching counts),
//! * [`relation::IntervalRelation`] — the six spatial relationships of
//!   Figure 3 and their per-dimension tuples for hyper-rectangles (Figure 4),
//! * [`transform`] — the Section 5.2 domain-tripling transform that
//!   eliminates shared endpoints (Assumption 1) without changing any overlap
//!   relationship,
//! * [`distance`] — L∞/L1/L2 point distances and ε-neighborhood cubes for
//!   ε-joins (Definition 2 / Section 6.3).
//!
//! Everything here is exact, integer-only and allocation-free; it is the
//! foundation both for the sketch estimators and for the exact ground-truth
//! query processors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fixed-arity loops indexing multiple parallel `[T; D]` arrays read more
// clearly with explicit indices than with zipped iterators.
#![allow(clippy::needless_range_loop)]

pub mod distance;
pub mod interval;
pub mod rect;
pub mod relation;
pub mod transform;

pub use interval::{Coord, Interval};
pub use rect::{rect2, HyperRect, Point};
pub use relation::IntervalRelation;

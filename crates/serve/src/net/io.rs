//! Frame I/O shared by the blocking client and the reactor.
//!
//! [`super::codec`] owns the wire *format*; this module owns moving frames
//! over sockets, in both I/O styles the front-end uses:
//!
//! * **Blocking** — [`read_frame`] / [`write_frame`] for the client (and
//!   test fakes), with every `std::io` failure mapped through
//!   [`wire_error_of`] so timeouts surface as [`WireError::Timeout`] and
//!   peer loss as [`WireError::Disconnected`] instead of a grab-bag
//!   `Io(_)`.
//! * **Incremental** — [`FrameDecoder`] for the reactor's non-blocking
//!   sockets: bytes arrive in whatever chunks the kernel delivers,
//!   [`FrameDecoder::extend`] appends them, and [`FrameDecoder::next_frame`]
//!   yields complete frames as they materialize, resuming cleanly across
//!   partial reads (a header split across two reads, a payload trickling
//!   in byte by byte).
//!
//! Both paths validate the same things in the same order — magic, version,
//! opcode, payload cap — so a framing violation is detected identically
//! whether the bytes arrived blocking or not.

use super::codec::{Opcode, WireError, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
use std::io::{ErrorKind, Read, Write};

/// One complete frame as read off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind.
    pub opcode: Opcode,
    /// The pipelining id; replies echo their request's id.
    pub frame_id: u32,
    /// The undecoded payload bytes.
    pub payload: Vec<u8>,
}

/// Maps a socket error onto the protocol's error taxonomy: timeouts become
/// [`WireError::Timeout`], peer loss becomes [`WireError::Disconnected`],
/// anything else stays [`WireError::Io`]. (`WouldBlock` lands in `Timeout`
/// because on blocking sockets with `set_read_timeout` that is how Unix
/// reports an elapsed timeout; the reactor handles `WouldBlock` itself
/// before ever consulting this mapping.)
pub fn wire_error_of(e: std::io::Error) -> WireError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => WireError::Timeout,
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => WireError::Disconnected,
        _ => WireError::Io(e),
    }
}

/// Encodes a frame header in place.
fn encode_header(opcode: Opcode, frame_id: u32, len: usize) -> [u8; HEADER_LEN] {
    debug_assert!(len <= MAX_PAYLOAD);
    let mut header = [0u8; HEADER_LEN];
    header[..2].copy_from_slice(&MAGIC.to_le_bytes());
    header[2] = VERSION;
    header[3] = opcode as u8;
    header[4..8].copy_from_slice(&frame_id.to_le_bytes());
    header[8..].copy_from_slice(&(len as u32).to_le_bytes());
    header
}

/// Validates a frame header, returning the opcode, frame id and declared
/// payload length. Shared by the blocking reader and the decoder so both
/// reject corruption identically.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(Opcode, u32, usize), WireError> {
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let opcode = Opcode::from_u8(header[3])?;
    let frame_id = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    Ok((opcode, frame_id, len))
}

/// One frame as contiguous bytes (header + payload) — what the reactor
/// appends to a connection's write buffer.
pub fn frame_bytes(opcode: Opcode, frame_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&encode_header(opcode, frame_id, payload.len()));
    out.extend_from_slice(payload);
    out
}

/// Writes one frame (header + payload) and flushes. Blocking.
pub fn write_frame(
    w: &mut impl Write,
    opcode: Opcode,
    frame_id: u32,
    payload: &[u8],
) -> Result<(), WireError> {
    let header = encode_header(opcode, frame_id, payload.len());
    w.write_all(&header).map_err(wire_error_of)?;
    w.write_all(payload).map_err(wire_error_of)?;
    w.flush().map_err(wire_error_of)?;
    Ok(())
}

/// Reads one frame, validating magic, version and the payload-length cap.
/// Blocking; honors the stream's configured read timeout
/// ([`WireError::Timeout`]) and reports peer loss — EOF at any point,
/// including mid-frame — as [`WireError::Disconnected`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(wire_error_of)?;
    let (opcode, frame_id, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(wire_error_of)?;
    Ok(Frame {
        opcode,
        frame_id,
        payload,
    })
}

/// Compact the decode buffer once this many consumed bytes accumulate;
/// bounds memory without memmoving after every frame.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// An incremental frame decoder for non-blocking reads.
///
/// Feed it whatever byte chunks the socket delivers with
/// [`FrameDecoder::extend`]; pull complete frames with
/// [`FrameDecoder::next_frame`]. State between calls is just the buffered
/// bytes, so a frame split at *any* byte boundary — mid-header,
/// mid-payload — resumes where it left off. A framing error (bad magic,
/// unknown version/opcode, oversize length) is terminal for the stream:
/// the caller must drop the connection, as there is no sound way to
/// resynchronize.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    at: usize,
}

impl FrameDecoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.at >= COMPACT_THRESHOLD || self.at == self.buf.len() {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Yields the next complete frame, `Ok(None)` if more bytes are
    /// needed, or a terminal framing error. Oversize payload lengths are
    /// rejected from the header alone, before any payload buffering.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let pending = &self.buf[self.at..];
        if pending.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: &[u8; HEADER_LEN] = pending[..HEADER_LEN].try_into().expect("length checked");
        let (opcode, frame_id, len) = parse_header(header)?;
        if pending.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = pending[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.at += HEADER_LEN + len;
        Ok(Some(Frame {
            opcode,
            frame_id,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::codec::{decode_queries, encode_queries, WireQuery};

    fn sample_frames() -> Vec<(Opcode, u32, Vec<u8>)> {
        vec![
            (Opcode::Ping, 7, Vec::new()),
            (
                Opcode::QueryBatch,
                u32::MAX,
                encode_queries(&[WireQuery::Range {
                    store: 3,
                    ranges: vec![(10, 20), (30, 40)],
                }]),
            ),
            (Opcode::Pong, 7, Vec::new()),
            (
                Opcode::QueryBatch,
                0,
                encode_queries(&[
                    WireQuery::FaultPanic,
                    WireQuery::Join {
                        r_store: 1,
                        s_store: 2,
                    },
                ]),
            ),
        ]
    }

    fn wire_of(frames: &[(Opcode, u32, Vec<u8>)]) -> Vec<u8> {
        let mut wire = Vec::new();
        for (op, id, payload) in frames {
            write_frame(&mut wire, *op, *id, payload).unwrap();
        }
        wire
    }

    /// Frames round-trip through the blocking path, ids intact.
    #[test]
    fn blocking_roundtrip_preserves_ids() {
        let frames = sample_frames();
        let wire = wire_of(&frames);
        let mut r = wire.as_slice();
        for (op, id, payload) in &frames {
            let frame = read_frame(&mut r).unwrap();
            assert_eq!(frame.opcode, *op);
            assert_eq!(frame.frame_id, *id);
            assert_eq!(&frame.payload, payload);
        }
        assert!(r.is_empty());
    }

    /// The decoder resumes across *every* possible split point: feeding the
    /// wire bytes one at a time yields exactly the frames the blocking
    /// reader sees, in order, with intact payloads.
    #[test]
    fn decoder_resumes_partial_reads_at_every_byte_boundary() {
        let frames = sample_frames();
        let wire = wire_of(&frames);
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for &byte in &wire {
            decoder.extend(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded.len(), frames.len());
        for (frame, (op, id, payload)) in decoded.iter().zip(&frames) {
            assert_eq!(frame.opcode, *op);
            assert_eq!(frame.frame_id, *id);
            assert_eq!(&frame.payload, payload);
        }
        assert_eq!(decoder.buffered(), 0);
        // Payloads decode after reassembly — the split points left no scars.
        assert!(decode_queries(&decoded[1].payload).is_ok());
    }

    /// One big extend with many frames drains them all; a trailing partial
    /// frame stays buffered until its bytes arrive.
    #[test]
    fn decoder_drains_multiple_frames_per_extend() {
        let frames = sample_frames();
        let mut wire = wire_of(&frames);
        let tail = wire.split_off(wire.len() - 5); // cut the last frame short
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        let mut decoded = Vec::new();
        while let Some(frame) = decoder.next_frame().unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded.len(), frames.len() - 1);
        assert!(decoder.buffered() > 0);
        decoder.extend(&tail);
        let last = decoder.next_frame().unwrap().unwrap();
        assert_eq!(last.frame_id, frames.last().unwrap().1);
        assert_eq!(decoder.buffered(), 0);
    }

    /// Single-bit flips in the magic/version/opcode header bytes never pass
    /// silently, through either path: they fail outright or (the one benign
    /// case) flip the opcode to a *different* valid opcode, which the
    /// receiving side rejects by direction.
    #[test]
    fn header_corruption_is_rejected_by_both_paths() {
        let wire = wire_of(&sample_frames()[1..2]);
        for byte in 0..4 {
            for bit in 0..8 {
                let mut corrupt = wire.clone();
                corrupt[byte] ^= 1 << bit;
                match read_frame(&mut corrupt.as_slice()) {
                    Err(_) => {}
                    Ok(frame) => assert_ne!(
                        frame.opcode,
                        Opcode::QueryBatch,
                        "flipping header byte {byte} bit {bit} preserved the opcode"
                    ),
                }
                let mut decoder = FrameDecoder::new();
                decoder.extend(&corrupt);
                match decoder.next_frame() {
                    Err(_) => {}
                    Ok(Some(frame)) => assert_ne!(frame.opcode, Opcode::QueryBatch),
                    Ok(None) => panic!("decoder stalled on a complete (corrupt) frame"),
                }
            }
        }
    }

    /// Oversize payload lengths are rejected from the header alone —
    /// before the blocking path allocates and before the decoder waits for
    /// payload bytes that may never come.
    #[test]
    fn oversize_lengths_are_rejected_before_allocating() {
        let mut header = encode_header(Opcode::QueryBatch, 1, 0);
        header[8..].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut header.as_slice()),
            Err(WireError::Oversize(_))
        ));
        let mut decoder = FrameDecoder::new();
        decoder.extend(&header);
        assert!(matches!(decoder.next_frame(), Err(WireError::Oversize(_))));
    }

    /// A stream that ends mid-frame is `Disconnected`, not a hang and not
    /// a generic I/O error.
    #[test]
    fn eof_mid_frame_is_disconnected() {
        let mut wire = wire_of(&sample_frames()[1..2]);
        wire.truncate(wire.len() - 3);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(WireError::Disconnected)
        ));
        // Truncated at mid-header too.
        assert!(matches!(
            read_frame(&mut wire[..5].as_ref()),
            Err(WireError::Disconnected)
        ));
    }

    /// The decoder's compaction keeps memory bounded across a long stream
    /// without corrupting frame boundaries.
    #[test]
    fn decoder_compaction_preserves_boundaries() {
        let frame = frame_bytes(Opcode::Ping, 9, &[]);
        let mut decoder = FrameDecoder::new();
        for round in 0..20_000u32 {
            decoder.extend(&frame);
            let got = decoder.next_frame().unwrap().expect("complete frame");
            assert_eq!(got.frame_id, 9, "round {round}");
            assert_eq!(decoder.buffered(), 0);
        }
    }
}

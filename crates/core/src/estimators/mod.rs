//! Ready-made estimators for the paper's query classes.
//!
//! | estimator | paper section | query |
//! |-----------|---------------|-------|
//! | [`joins::SpatialJoin`] | §4, §6.1, §5.2, App. C | `\|R ⋈_o S\|` for d-dimensional hyper-rectangles |
//! | [`joins::OverlapPlusJoin`] | App. B.1 | `\|R ⋈+_o S\|` (touching counts) |
//! | [`eps::EpsJoin`] | §6.3 | `\|A ⋈_ε B\|` for point sets under L∞ |
//! | [`range::RangeQuery`] | §6.4 | `\|Q(q, R)\|` and stabbing counts |
//! | [`containment::IntervalContainment`] / [`containment::RectContainment`] | App. B.2 | `#{(r, s) : s ⊆ r}` |

pub mod containment;
pub mod eps;
pub mod joins;
pub mod range;

use crate::schema::BoostShape;
use fourwise::XiKind;

/// Construction-time configuration shared by all estimators.
#[derive(Debug, Clone, Copy)]
pub struct SketchConfig {
    /// Which four-wise independent generator to use.
    pub kind: XiKind,
    /// Boosting grid shape (`k1` averaged, median of `k2`).
    pub shape: BoostShape,
    /// Optional `maxLevel` truncation (Section 6.5). `None` = fully dyadic.
    pub max_level: Option<u32>,
}

impl SketchConfig {
    /// Default configuration: BCH families, fully dyadic covers.
    pub fn new(k1: usize, k2: usize) -> Self {
        Self {
            kind: XiKind::Bch,
            shape: BoostShape::new(k1, k2),
            max_level: None,
        }
    }

    /// Sets the xi construction.
    pub fn with_kind(mut self, kind: XiKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the `maxLevel` truncation.
    pub fn with_max_level(mut self, max_level: u32) -> Self {
        self.max_level = Some(max_level);
        self
    }
}

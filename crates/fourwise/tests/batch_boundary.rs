//! Property tests for `fourwise::batch` across the cube-table boundary,
//! at every lane width.
//!
//! `XiContext` eagerly tabulates GF(2^k) cubes for `k <=`
//! [`CUBE_TABLE_MAX_BITS`] and computes them on the fly above it; the block
//! evaluation path consumes `IndexPre` either way and must agree with the
//! scalar `XiFamily` evaluation bit for bit on both sides of the boundary —
//! for the portable 64-lane `u64` blocks, the 256-lane [`WideLane`] blocks
//! and the 512-lane [`WideLane512`] blocks alike.
//!
//! Seeded stand-ins for property tests (deterministic randomized loops).

use fourwise::{
    IndexPre, Lane, LaneCounter, WideLane, WideLane512, XiBlock, XiContext, XiKind, XiSeed,
    BLOCK_LANES, CUBE_TABLE_MAX_BITS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domains straddling the table/no-table split (table for 20 and 21, on-the-
/// fly field arithmetic for 22).
const BOUNDARY_KS: [u32; 3] = [
    CUBE_TABLE_MAX_BITS - 1,
    CUBE_TABLE_MAX_BITS,
    CUBE_TABLE_MAX_BITS + 1,
];

#[test]
fn boundary_constants_still_straddle() {
    // The satellite contract: k = 20, 21, 22 crosses the tabulation cutoff.
    assert_eq!(CUBE_TABLE_MAX_BITS, 21);
    assert_eq!(BOUNDARY_KS, [20, 21, 22]);
}

fn size_one_blocks_equal_family_evaluation_at<L: Lane>() {
    for k in BOUNDARY_KS {
        for kind in [XiKind::Bch, XiKind::Poly] {
            let ctx = XiContext::new(kind, k);
            let mut rng = StdRng::seed_from_u64(1000 + k as u64);
            for trial in 0..8 {
                let seed = ctx.random_seed(&mut rng);
                let block = XiBlock::<L>::pack(&ctx, &[seed]);
                assert_eq!(block.lanes(), 1);
                let fam = ctx.family(seed);
                let top = (1u64 << k) - 1;
                for t in 0..200u64 {
                    // Deterministic spread plus random draws, hitting both
                    // domain ends.
                    let i = match t {
                        0 => 0,
                        1 => top,
                        _ => rng.gen_range(0..=top),
                    };
                    let pre = ctx.precompute(i);
                    let mask = block.eval_mask(pre);
                    let got = 1 - 2 * mask.bit(0) as i64;
                    assert_eq!(
                        got,
                        fam.xi_pre(pre),
                        "{kind:?} k={k} trial={trial} index={i}"
                    );
                    assert_eq!(fam.xi_pre(pre), fam.xi(i), "precompute path diverged");
                }
            }
        }
    }
}

#[test]
fn size_one_blocks_equal_family_evaluation() {
    size_one_blocks_equal_family_evaluation_at::<u64>();
    size_one_blocks_equal_family_evaluation_at::<WideLane>();
    size_one_blocks_equal_family_evaluation_at::<WideLane512>();
}

fn full_blocks_equal_family_sums_at<L: Lane>() {
    for k in BOUNDARY_KS {
        for kind in [XiKind::Bch, XiKind::Poly] {
            let ctx = XiContext::new(kind, k);
            let mut rng = StdRng::seed_from_u64(2000 + k as u64);
            let seeds: Vec<XiSeed> = (0..L::LANES).map(|_| ctx.random_seed(&mut rng)).collect();
            let block = XiBlock::<L>::pack(&ctx, &seeds);
            let top = (1u64 << k) - 1;
            let pres: Vec<IndexPre> = (0..40)
                .map(|_| ctx.precompute(rng.gen_range(0..=top)))
                .collect();
            let mut counter = LaneCounter::<L>::new();
            let mut sums = vec![0i64; L::LANES];
            block.sum_pre_into(&pres, &mut counter, &mut sums);
            for (lane, &seed) in seeds.iter().enumerate() {
                let fam = ctx.family(seed);
                assert_eq!(sums[lane], fam.sum_pre(&pres), "{kind:?} k={k} lane={lane}");
            }
        }
    }
}

#[test]
fn full_blocks_equal_family_sums_at_boundary() {
    full_blocks_equal_family_sums_at::<u64>();
    full_blocks_equal_family_sums_at::<WideLane>();
    full_blocks_equal_family_sums_at::<WideLane512>();
}

/// A `lanes`-lane partial tail block at width `L` against the equivalent
/// narrow split, above the cube-table cutoff — exercising the occupancy
/// skip (only `lanes.div_ceil(64)` of `L::WORDS` backing words are live).
fn tail_blocks_match_narrow_blocks_at<L: Lane>(lanes: usize, seed: u64) {
    let k = CUBE_TABLE_MAX_BITS + 1;
    let ctx = XiContext::new(XiKind::Bch, k);
    let mut rng = StdRng::seed_from_u64(seed);
    let seeds: Vec<XiSeed> = (0..lanes).map(|_| ctx.random_seed(&mut rng)).collect();
    let wide = XiBlock::<L>::pack(&ctx, &seeds);
    assert_eq!(wide.lanes(), lanes);
    assert_eq!(wide.occupied_words(), lanes.div_ceil(64));
    let pres: Vec<IndexPre> = (0..60)
        .map(|_| ctx.precompute(rng.gen_range(0..1u64 << k)))
        .collect();
    let mut wide_counter = LaneCounter::<L>::new();
    let mut wide_sums = vec![0i64; lanes];
    wide.sum_pre_into(&pres, &mut wide_counter, &mut wide_sums);
    let mut counter = LaneCounter::<u64>::new();
    let mut narrow_sums = vec![0i64; lanes];
    for (b, chunk) in seeds.chunks(BLOCK_LANES).enumerate() {
        let narrow = XiBlock::<u64>::pack(&ctx, chunk);
        narrow.sum_pre_into(
            &pres,
            &mut counter,
            &mut narrow_sums[b * BLOCK_LANES..b * BLOCK_LANES + chunk.len()],
        );
    }
    assert_eq!(wide_sums, narrow_sums);
}

#[test]
fn wide_tail_blocks_match_narrow_blocks_at_boundary() {
    // 100 lanes: 2 of 4 occupied words in a 256-lane block.
    tail_blocks_match_narrow_blocks_at::<WideLane>(100, 3000);
}

#[test]
fn wide512_tail_blocks_match_narrow_blocks_at_boundary() {
    // 100 and 300 lanes: 2 and 5 of 8 occupied words in a 512-lane block.
    tail_blocks_match_narrow_blocks_at::<WideLane512>(100, 3000);
    tail_blocks_match_narrow_blocks_at::<WideLane512>(300, 3001);
}

//! Lane words: the machine-word abstraction under the bit-sliced kernels.
//!
//! Every bit-sliced structure in [`crate::batch`] — seed planes, sign masks,
//! carry-save counter planes — is "one bit per family instance" packed into a
//! machine word. The [`Lane`] trait abstracts that word so the same kernels
//! run at different widths:
//!
//! * [`u64`] — the portable baseline: 64 instances per block, one scalar
//!   XOR/AND per plane operation. Kept bit-identical as the differential
//!   oracle for wider lanes.
//! * [`WideLane`] (`[u64; 4]`) — 256 instances per block. All lane-wise
//!   operations are straight-line loops over four words, the shape LLVM
//!   autovectorizes to SSE2/AVX2/NEON at `-O` without nightly `std::simd` or
//!   `target_feature` gating; even without vector units it quarters the
//!   per-block fixed costs (loop control, counter extraction setup, scratch
//!   walks).
//! * [`WideLane512`] (`[u64; 8]`) — 512 instances per block, the AVX-512
//!   register shape. Same autovectorizable loops, one more halving of the
//!   per-block fixed costs; the runtime dispatcher in `sketch::kernel` only
//!   prefers it where the CPU reports 512-bit vectors and the schema is wide
//!   enough to fill the lanes.
//!
//! The trait surface is exactly what the kernels need: splat/set/test of
//! per-lane bits, lane-wise XOR/AND (the GF(2) plane fold and the carry-save
//! adder step), a zero test (early carry exit), and per-lane popcount — plus
//! *prefix* variants of the fold operations that touch only the first `words`
//! backing words, which the batch kernels use to skip the all-zero upper
//! words of partial tail blocks (a 300-lane tail in a 512-lane block only
//! occupies 5 of 8 words). Everything heavier — packing seeds into planes,
//! evaluating ξ masks, carry-save accumulation — is built on top in
//! [`crate::batch`] and stays width-generic.

use std::fmt::Debug;

/// A fixed-width word of instance lanes (one bit per sketch instance).
///
/// Implementations must behave as `LANES`-bit bitsets with lane `j` stored
/// in bit `j % 64` of backing word `j / 64`. All operations are lane-wise;
/// none may observe or disturb neighbouring lanes.
pub trait Lane: Copy + Clone + Debug + Default + PartialEq + Eq + Send + Sync + 'static {
    /// Number of instance lanes (bits) in one lane word.
    const LANES: usize;

    /// Number of backing 64-bit words (`LANES / 64`).
    const WORDS: usize;

    /// The all-zero lane word.
    fn zero() -> Self;

    /// A word with every lane's bit set to `bit`.
    fn splat(bit: bool) -> Self;

    /// Sets lane `lane`'s bit.
    fn set_bit(&mut self, lane: usize);

    /// Lane `lane`'s bit as `0` or `1`.
    fn bit(&self, lane: usize) -> u64;

    /// Backing word `idx` (lanes `[64·idx, 64·(idx+1))`).
    fn word(&self, idx: usize) -> u64;

    /// Lane-wise XOR-assign (the GF(2) plane fold).
    fn xor_assign(&mut self, rhs: &Self);

    /// Lane-wise AND (the carry step of the carry-save adder).
    fn and(&self, rhs: &Self) -> Self;

    /// Whether every lane bit is clear.
    fn is_zero(&self) -> bool;

    /// Number of set lane bits (popcount across all lanes).
    fn count_ones(&self) -> u32;

    /// [`Lane::xor_assign`] restricted to the first `words` backing words.
    ///
    /// The occupancy-skip contract: callers may only pass `words <
    /// Self::WORDS` when both operands are known all-zero in every skipped
    /// word, so the restricted fold is bit-identical to the full one.
    #[inline(always)]
    fn xor_assign_prefix(&mut self, rhs: &Self, words: usize) {
        debug_assert!(words >= Self::WORDS);
        let _ = words;
        self.xor_assign(rhs);
    }

    /// [`Lane::and`] restricted to the first `words` backing words (skipped
    /// words of the result are zero — which equals the full AND under the
    /// occupancy-skip contract above).
    #[inline(always)]
    fn and_prefix(&self, rhs: &Self, words: usize) -> Self {
        debug_assert!(words >= Self::WORDS);
        let _ = words;
        self.and(rhs)
    }

    /// [`Lane::is_zero`] restricted to the first `words` backing words.
    #[inline(always)]
    fn is_zero_prefix(&self, words: usize) -> bool {
        debug_assert!(words >= Self::WORDS);
        let _ = words;
        self.is_zero()
    }
}

impl Lane for u64 {
    const LANES: usize = 64;
    const WORDS: usize = 1;

    #[inline(always)]
    fn zero() -> Self {
        0
    }

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        if bit {
            u64::MAX
        } else {
            0
        }
    }

    #[inline(always)]
    fn set_bit(&mut self, lane: usize) {
        *self |= 1u64 << lane;
    }

    #[inline(always)]
    fn bit(&self, lane: usize) -> u64 {
        (*self >> lane) & 1
    }

    #[inline(always)]
    fn word(&self, idx: usize) -> u64 {
        debug_assert_eq!(idx, 0);
        *self
    }

    #[inline(always)]
    fn xor_assign(&mut self, rhs: &Self) {
        *self ^= *rhs;
    }

    #[inline(always)]
    fn and(&self, rhs: &Self) -> Self {
        *self & *rhs
    }

    #[inline(always)]
    fn is_zero(&self) -> bool {
        *self == 0
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        u64::count_ones(*self)
    }
}

/// The 256-lane wide word: four `u64`s evaluated lane-wise in lockstep.
pub type WideLane = [u64; 4];

/// The 512-lane wide word: eight `u64`s — one AVX-512 register — evaluated
/// lane-wise in lockstep.
pub type WideLane512 = [u64; 8];

/// One width-generic implementation covers [`WideLane`] and [`WideLane512`]
/// (and any future `[u64; N]` width): all operations are fixed-trip-count
/// loops over the backing words, the shape LLVM unrolls and autovectorizes.
/// The prefix variants take a variable trip count instead, trading vector
/// width for skipping words that are provably zero in partial tail blocks.
/// They cut over to the full fixed-width code as soon as the occupied
/// prefix is the majority of the word (`2 * words >= N`): under the
/// occupancy contract the dead words are zero, so full-width folds compute
/// the identical result, and one unrolled vector pass beats a short
/// variable-trip scalar loop — a mostly-full tail block (say 440 of 512
/// lanes) then runs exactly the full-block code.
impl<const N: usize> Lane for [u64; N]
where
    [u64; N]: Default,
{
    const LANES: usize = 64 * N;
    const WORDS: usize = N;

    #[inline(always)]
    fn zero() -> Self {
        [0; N]
    }

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        [if bit { u64::MAX } else { 0 }; N]
    }

    #[inline(always)]
    fn set_bit(&mut self, lane: usize) {
        self[lane >> 6] |= 1u64 << (lane & 63);
    }

    #[inline(always)]
    fn bit(&self, lane: usize) -> u64 {
        (self[lane >> 6] >> (lane & 63)) & 1
    }

    #[inline(always)]
    fn word(&self, idx: usize) -> u64 {
        self[idx]
    }

    #[inline(always)]
    fn xor_assign(&mut self, rhs: &Self) {
        for (a, b) in self.iter_mut().zip(rhs.iter()) {
            *a ^= *b;
        }
    }

    #[inline(always)]
    fn and(&self, rhs: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.iter_mut().zip(rhs.iter()) {
            *a &= *b;
        }
        out
    }

    #[inline(always)]
    fn is_zero(&self) -> bool {
        self.iter().fold(0u64, |acc, &w| acc | w) == 0
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        self.iter().map(|w| w.count_ones()).sum()
    }

    #[inline(always)]
    fn xor_assign_prefix(&mut self, rhs: &Self, words: usize) {
        if 2 * words >= N {
            self.xor_assign(rhs);
        } else {
            for (a, b) in self[..words].iter_mut().zip(rhs[..words].iter()) {
                *a ^= *b;
            }
        }
    }

    #[inline(always)]
    fn and_prefix(&self, rhs: &Self, words: usize) -> Self {
        if 2 * words >= N {
            return self.and(rhs);
        }
        let mut out = [0u64; N];
        for (o, (a, b)) in out[..words]
            .iter_mut()
            .zip(self[..words].iter().zip(rhs[..words].iter()))
        {
            *o = a & b;
        }
        out
    }

    #[inline(always)]
    fn is_zero_prefix(&self, words: usize) -> bool {
        if 2 * words >= N {
            return self.is_zero();
        }
        self[..words].iter().fold(0u64, |acc, &w| acc | w) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<L: Lane>() {
        assert_eq!(L::LANES, L::WORDS * 64);
        let mut a = L::zero();
        assert!(a.is_zero());
        assert_eq!(a.count_ones(), 0);
        // Bits land in the advertised lane and nowhere else.
        for lane in [0, 1, 63 % L::LANES, L::LANES / 2, L::LANES - 1] {
            let mut w = L::zero();
            w.set_bit(lane);
            assert_eq!(w.bit(lane), 1, "lane {lane}");
            assert_eq!(w.count_ones(), 1, "lane {lane}");
            for other in 0..L::LANES {
                if other != lane {
                    assert_eq!(w.bit(other), 0, "lane {lane} leaked into {other}");
                }
            }
            // word()/bit() agree on the backing layout.
            assert_eq!((w.word(lane / 64) >> (lane % 64)) & 1, 1);
        }
        // XOR/AND behave lane-wise.
        a.set_bit(0);
        a.set_bit(L::LANES - 1);
        let mut b = L::zero();
        b.set_bit(0);
        let and = a.and(&b);
        assert_eq!(and.bit(0), 1);
        assert_eq!(and.count_ones(), 1);
        a.xor_assign(&b);
        assert_eq!(a.bit(0), 0);
        assert_eq!(a.bit(L::LANES - 1), 1);
        // Splat covers every lane or none.
        assert_eq!(L::splat(true).count_ones(), L::LANES as u32);
        assert!(L::splat(false).is_zero());
    }

    /// Prefix ops agree with the full-width ops whenever both operands are
    /// zero in the skipped words (the occupancy-skip contract), at every
    /// prefix length.
    fn exercise_prefix<L: Lane>() {
        for words in 1..=L::WORDS {
            let lanes = words * 64;
            let mut a = L::zero();
            let mut b = L::zero();
            // Populate only the first `words` backing words.
            for lane in [0, lanes / 2, lanes - 1] {
                a.set_bit(lane);
            }
            for lane in [0, lanes - 1] {
                b.set_bit(lane);
            }
            let mut full = a;
            full.xor_assign(&b);
            let mut prefix = a;
            prefix.xor_assign_prefix(&b, words);
            assert_eq!(prefix, full, "xor prefix {words}/{}", L::WORDS);
            assert_eq!(a.and_prefix(&b, words), a.and(&b), "and prefix {words}");
            assert_eq!(
                a.is_zero_prefix(words),
                a.is_zero(),
                "is_zero prefix {words}"
            );
            assert!(L::zero().is_zero_prefix(words));
        }
    }

    #[test]
    fn u64_lane_semantics() {
        exercise::<u64>();
        exercise_prefix::<u64>();
    }

    #[test]
    fn wide_lane_semantics() {
        exercise::<WideLane>();
        exercise_prefix::<WideLane>();
    }

    #[test]
    fn wide512_lane_semantics() {
        exercise::<WideLane512>();
        exercise_prefix::<WideLane512>();
    }

    #[test]
    fn minority_prefix_ops_ignore_suffix_words() {
        // Below the majority cutover (`2 * words < N`) the prefix ops take
        // the short variable-trip path: with garbage in the words past the
        // prefix they must not read them (is_zero) nor let them affect the
        // folded prefix words. (At or above the cutover the ops run the
        // full fixed-width code, which is only equivalent under the
        // occupancy contract — suffix words all-zero.)
        let mut a = WideLane512::zero();
        let mut b = WideLane512::zero();
        a[7] = u64::MAX;
        b[6] = 0xDEAD_BEEF;
        a.set_bit(3);
        b.set_bit(3);
        assert!(!a.is_zero_prefix(1)); // lane 3 lives in word 0
        let mut x = a;
        x.xor_assign_prefix(&b, 3);
        assert_eq!(x.bit(3), 0);
        assert_eq!(x[7], u64::MAX, "suffix words untouched");
        assert_eq!(x[6], 0, "suffix words untouched");
        let y = a.and_prefix(&b, 3);
        assert_eq!(y.bit(3), 1);
        assert_eq!(y[6], 0);
        assert_eq!(y[7], 0, "and prefix zeroes the suffix");
        let mut only_tail = WideLane512::zero();
        only_tail[5] = 1;
        assert!(
            only_tail.is_zero_prefix(2),
            "word 5 is past a 2-word prefix"
        );
        assert!(!only_tail.is_zero_prefix(6));
    }
}

//! Figures 9, 10, 11: relative error vs allocated space on the real-life
//! GIS joins — LANDC ⋈ LANDO, LANDC ⋈ SOIL, LANDO ⋈ SOIL.
//!
//! The Wyoming datasets are not redistributable; `datagen::gis` generates
//! clustered stand-ins with the paper's cardinalities (see DESIGN.md).
//! Expected shape: SKETCH error declines steadily with space; GH is
//! competitive only at larger budgets; EH is good at small budgets but
//! *worsens* unpredictably as the grid refines.
//!
//! Usage:
//!   cargo run --release -p spatial-bench --bin fig9_11
//!     [-- --pair landc-lando|landc-soil|lando-soil|all]
//!     [--paper-scale] [--trials 2] [--threads N] [--seed 1]

use geometry::HyperRect;
use serde::Serialize;
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, write_json, Table};
use spatial_bench::runner::{
    default_threads, eh_join_error, eh_level_for_words, gh_join_error, gh_level_for_words,
    sketch_join_error_2d,
};

#[derive(Serialize)]
struct PairRecord {
    pair: String,
    truth: u64,
    budgets: Vec<f64>,
    sketch_err: Vec<f64>,
    eh_err: Vec<Option<f64>>,
    gh_err: Vec<Option<f64>>,
}

fn dataset(name: &str, seed: u64) -> Vec<HyperRect<2>> {
    match name {
        "lando" => datagen::lando(seed),
        "landc" => datagen::landc(seed),
        "soil" => datagen::soil(seed),
        other => panic!("unknown dataset {other}"),
    }
}

fn run_pair(pair: &str, budgets: &[f64], trials: u32, threads: usize, seed: u64) -> PairRecord {
    let (a_name, b_name) = pair.split_once('-').expect("pair format a-b");
    let r = dataset(a_name, seed);
    let s = dataset(b_name, seed);
    let bits = datagen::GIS_DOMAIN_BITS;
    let truth = exact::rect_join_count(&r, &s);
    let truth_f = truth as f64;
    println!(
        "# {pair}: |R| = {}, |S| = {}, true join = {truth} (selectivity {:.2e})",
        r.len(),
        s.len(),
        truth_f / (r.len() as f64 * s.len() as f64)
    );

    let mut table = Table::new(
        format!("relative error vs space for {pair}"),
        &["words", "SKETCH", "EH", "GH"],
    );
    let mut rec = PairRecord {
        pair: pair.into(),
        truth,
        budgets: budgets.to_vec(),
        sketch_err: vec![],
        eh_err: vec![],
        gh_err: vec![],
    };
    for (i, &words) in budgets.iter().enumerate() {
        let sk = sketch_join_error_2d(
            &r,
            &s,
            truth_f,
            bits,
            words,
            trials,
            seed + 31 * i as u64,
            threads,
        );
        let eh = eh_level_for_words(words, bits).map(|l| eh_join_error(&r, &s, truth_f, bits, l));
        let gh = gh_level_for_words(words, bits).map(|l| gh_join_error(&r, &s, truth_f, bits, l));
        table.push_row(vec![
            format_num(words),
            format_num(sk),
            eh.map(format_num).unwrap_or_else(|| "-".into()),
            gh.map(format_num).unwrap_or_else(|| "-".into()),
        ]);
        rec.sketch_err.push(sk);
        rec.eh_err.push(eh);
        rec.gh_err.push(gh);
        eprintln!(
            "  {pair} @ {words:.0} words: SKETCH {sk:.4}, EH {}, GH {}",
            eh.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()),
            gh.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()),
        );
    }
    table.print();
    table.write_csv(&format!("fig9_11_{pair}"));
    rec
}

fn main() {
    let args = Args::parse(&["paper-scale"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let pair = args.get("pair").unwrap_or("all").to_string();
    let trials: u32 = args.get_or("trials", 2).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");
    let seed: u64 = args.get_or("seed", 1).expect("--seed");
    let paper = args.has("paper-scale");

    // Word budgets per dataset, chosen at the EH/GH level boundaries like
    // the paper's 0..40K-word x-axis.
    let budgets: Vec<f64> = if paper {
        vec![529.0, 1024.0, 2209.0, 4096.0, 9025.0, 16384.0, 36481.0]
    } else {
        vec![529.0, 1024.0, 2209.0, 4096.0, 9025.0]
    };

    println!("# FIG9-11 — error vs space on simulated Wyoming GIS joins");
    let pairs: Vec<&str> = match pair.as_str() {
        "all" => vec!["landc-lando", "landc-soil", "lando-soil"],
        p => vec![p],
    };
    let mut records = Vec::new();
    for p in pairs {
        records.push(run_pair(p, &budgets, trials, threads, seed));
    }
    let json = write_json("fig9_11", &records);
    println!("wrote {}", json.display());
}

//! Sketch schemas: the shared randomness that makes sketches combinable.
//!
//! Two sketches can only be multiplied into a join estimate if they were
//! built over the *same* ξ-families (Section 4.1: `X_I`, `X_E` for `R` and
//! `Y_I`, `Y_E` for `S` share the ξ's). A [`SketchSchema`] captures that
//! shared state: per-dimension domain configuration, the boosting grid shape
//! `k1 × k2` (Figure 1), and one independently drawn seed per (instance,
//! dimension). Sketch sets hold an `Arc` to their schema and estimation
//! verifies schema identity.

use crate::error::{Result, SketchError};
use dyadic::DyadicDomain;
use fourwise::{Lane, WideLane, WideLane512, XiBlock, XiContext, XiKind, XiSeed, BLOCK_LANES};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-dimension sketch-domain configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSpec {
    /// Domain bits of the *sketch* coordinate space for this dimension
    /// (after any endpoint transform; the tripled domain of Section 5.2 needs
    /// `data_bits + 2`).
    pub sketch_bits: u32,
    /// Maximum dyadic level used by covers (Section 6.5). Use `sketch_bits`
    /// for the standard fully-dyadic sketch, `0` for the paper's "standard"
    /// (per-coordinate) sketch.
    pub max_level: u32,
}

impl DimSpec {
    /// Fully dyadic configuration for a domain of `2^bits` coordinates.
    pub fn dyadic(bits: u32) -> Self {
        Self {
            sketch_bits: bits,
            max_level: bits,
        }
    }

    /// Truncated configuration (Section 6.5).
    pub fn with_max_level(bits: u32, max_level: u32) -> Self {
        Self {
            sketch_bits: bits,
            max_level: max_level.min(bits),
        }
    }
}

/// Shape of the boosting grid (Section 2.3, Figure 1): estimates are means
/// over `k1` i.i.d. atomic estimates, then the median over `k2` such means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoostShape {
    /// Averaging width (variance reduction).
    pub k1: usize,
    /// Median count (confidence boosting); odd values make the median exact.
    pub k2: usize,
}

impl BoostShape {
    /// Creates a shape; both factors must be positive.
    pub fn new(k1: usize, k2: usize) -> Self {
        assert!(k1 >= 1 && k2 >= 1, "boost shape factors must be positive");
        Self { k1, k2 }
    }

    /// Total number of atomic sketch instances.
    pub fn instances(&self) -> usize {
        self.k1 * self.k2
    }
}

static SCHEMA_COUNTER: AtomicU64 = AtomicU64::new(1);

/// The shared-randomness contract for a family of combinable sketches.
#[derive(Debug)]
pub struct SketchSchema<const D: usize> {
    id: u64,
    kind: XiKind,
    shape: BoostShape,
    dims: [DimSpec; D],
    dyadic: [DyadicDomain; D],
    xi_ctx: [XiContext; D],
    /// One seed per (instance, dimension); instance `i = row * k1 + col`.
    seeds: Vec<[XiSeed; D]>,
    /// Per dimension, the instance seeds re-packed into bit-sliced
    /// evaluation blocks of [`BLOCK_LANES`] consecutive instances (the last
    /// block may be partial) — the batched build kernel's working set.
    seed_blocks: [Vec<XiBlock>; D],
    /// The same seeds re-packed at the 256-lane [`WideLane`] width — the
    /// wide kernels' working set. Packed lazily on first wide-kernel use:
    /// schemas below the wide-width threshold never pay for it (a partial
    /// wide block allocates full-width planes, so small schemas would store
    /// strictly more than their 64-lane packing).
    seed_blocks_wide: OnceLock<[Vec<XiBlock<WideLane>>; D]>,
    /// And at the 512-lane [`WideLane512`] width, equally lazily — only
    /// schemas the runtime dispatcher (or an explicit kernel choice) sends
    /// down the 512-lane path ever pack these planes.
    seed_blocks_wide512: OnceLock<[Vec<XiBlock<WideLane512>>; D]>,
}

impl<const D: usize> SketchSchema<D> {
    /// Draws a fresh schema. All `k1·k2·D` seeds are independent, matching
    /// the paper's requirement that instances be i.i.d. and that dimensions
    /// use mutually independent ξ-families.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        kind: XiKind,
        shape: BoostShape,
        dims: [DimSpec; D],
    ) -> Arc<Self> {
        assert!(D >= 1, "schemas need at least one dimension");
        let dyadic = dims.map(|d| DyadicDomain::new(d.sketch_bits));
        // ξ indices are dyadic node ids, which need bits+1 bits.
        let xi_ctx = dims.map(|d| XiContext::new(kind, d.sketch_bits + 1));
        let mut seeds = Vec::with_capacity(shape.instances());
        for _ in 0..shape.instances() {
            let mut row = [XiSeed::random(rng, kind, 1); D];
            for (i, ctx) in xi_ctx.iter().enumerate() {
                row[i] = ctx.random_seed(rng);
            }
            seeds.push(row);
        }
        let seed_blocks = pack_seed_blocks(&xi_ctx, &seeds);
        Arc::new(Self {
            id: SCHEMA_COUNTER.fetch_add(1, Ordering::Relaxed),
            kind,
            shape,
            dims,
            dyadic,
            xi_ctx,
            seeds,
            seed_blocks,
            seed_blocks_wide: OnceLock::new(),
            seed_blocks_wide512: OnceLock::new(),
        })
    }

    /// Rebuilds a schema from explicit seeds (snapshot restore; see the
    /// `persist` module). The restored schema gets a fresh process-local
    /// identity: sketches restored *together* share it, which preserves
    /// combinability exactly for sketches that were combinable when captured.
    pub(crate) fn restore(
        kind: XiKind,
        shape: BoostShape,
        dims: [DimSpec; D],
        seeds: Vec<[XiSeed; D]>,
    ) -> Arc<Self> {
        assert_eq!(seeds.len(), shape.instances(), "seed/shape mismatch");
        let dyadic = dims.map(|d| DyadicDomain::new(d.sketch_bits));
        let xi_ctx: [XiContext; D] =
            std::array::from_fn(|i| XiContext::new(kind, dims[i].sketch_bits + 1));
        let seed_blocks = pack_seed_blocks(&xi_ctx, &seeds);
        Arc::new(Self {
            id: SCHEMA_COUNTER.fetch_add(1, Ordering::Relaxed),
            kind,
            shape,
            dims,
            dyadic,
            xi_ctx,
            seeds,
            seed_blocks,
            seed_blocks_wide: OnceLock::new(),
            seed_blocks_wide512: OnceLock::new(),
        })
    }

    /// Unique identity of this schema within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The xi construction in use.
    pub fn kind(&self) -> XiKind {
        self.kind
    }

    /// Boosting grid shape.
    pub fn shape(&self) -> BoostShape {
        self.shape
    }

    /// Number of atomic instances (`k1 · k2`).
    pub fn instances(&self) -> usize {
        self.shape.instances()
    }

    /// Per-dimension configuration.
    pub fn dims(&self) -> &[DimSpec; D] {
        &self.dims
    }

    /// Per-dimension dyadic domains.
    pub fn dyadic(&self) -> &[DyadicDomain; D] {
        &self.dyadic
    }

    /// Per-dimension ξ evaluation contexts.
    pub fn xi_ctx(&self) -> &[XiContext; D] {
        &self.xi_ctx
    }

    /// Seeds of one instance.
    pub fn instance_seeds(&self, instance: usize) -> &[XiSeed; D] {
        &self.seeds[instance]
    }

    /// Bit-sliced evaluation blocks of dimension `dim`: block `b` packs the
    /// seeds of instances `[b·BLOCK_LANES, (b+1)·BLOCK_LANES)` (the last
    /// block holds the remainder).
    pub fn seed_blocks(&self, dim: usize) -> &[XiBlock] {
        &self.seed_blocks[dim]
    }

    /// Number of instance blocks ([`BLOCK_LANES`]-sized groups) per dimension.
    pub fn instance_blocks(&self) -> usize {
        self.instances().div_ceil(BLOCK_LANES)
    }

    /// Wide (256-lane) evaluation blocks of dimension `dim`; the [`WideLane`]
    /// analogue of [`SketchSchema::seed_blocks`]. The first call packs the
    /// wide planes from the instance seeds (thread-safe, once per schema).
    pub fn seed_blocks_wide(&self, dim: usize) -> &[XiBlock<WideLane>] {
        &self
            .seed_blocks_wide
            .get_or_init(|| pack_seed_blocks(&self.xi_ctx, &self.seeds))[dim]
    }

    /// Number of wide instance blocks per dimension.
    pub fn instance_blocks_wide(&self) -> usize {
        self.instances().div_ceil(WideLane::LANES)
    }

    /// 512-lane evaluation blocks of dimension `dim`; the [`WideLane512`]
    /// analogue of [`SketchSchema::seed_blocks`], packed lazily on first use
    /// like the 256-lane planes.
    pub fn seed_blocks_wide512(&self, dim: usize) -> &[XiBlock<WideLane512>] {
        &self
            .seed_blocks_wide512
            .get_or_init(|| pack_seed_blocks(&self.xi_ctx, &self.seeds))[dim]
    }

    /// Number of 512-lane instance blocks per dimension.
    pub fn instance_blocks_wide512(&self) -> usize {
        self.instances().div_ceil(WideLane512::LANES)
    }

    /// Validates that a sketch coordinate fits dimension `dim`.
    pub fn check_coord(&self, dim: usize, coord: u64) -> Result<()> {
        let max = (1u64 << self.dims[dim].sketch_bits) - 1;
        if coord > max {
            Err(SketchError::DomainOverflow { coord, max, dim })
        } else {
            Ok(())
        }
    }

    /// Seed storage in *bits* across all instances and dimensions — the
    /// paper's accounting charges `2k + 1` bits per BCH family.
    pub fn seed_bits(&self) -> u64 {
        let per_dim: u64 = self
            .dims
            .iter()
            .map(|d| 2 * (d.sketch_bits as u64 + 1) + 1)
            .sum();
        self.instances() as u64 * per_dim
    }
}

/// Transposes per-instance seed rows into per-dimension block columns of
/// `L::LANES` instances each.
fn pack_seed_blocks<L: Lane, const D: usize>(
    xi_ctx: &[XiContext; D],
    seeds: &[[XiSeed; D]],
) -> [Vec<XiBlock<L>>; D] {
    std::array::from_fn(|dim| {
        seeds
            .chunks(L::LANES)
            .map(|chunk| {
                let col: Vec<XiSeed> = chunk.iter().map(|row| row[dim]).collect();
                XiBlock::<L>::pack(&xi_ctx[dim], &col)
            })
            .collect()
    })
}

/// Lane-width-generic access to a schema's packed seed planes: the bridge
/// that lets one build/query kernel implementation serve every [`Lane`]
/// width. Implemented for the three supported widths, `u64` (64 lanes),
/// [`WideLane`] (256 lanes) and [`WideLane512`] (512 lanes).
pub trait SchemaLanes: Lane {
    /// The schema's packed seed blocks of dimension `dim` at this width.
    fn seed_blocks<const D: usize>(schema: &SketchSchema<D>, dim: usize) -> &[XiBlock<Self>];

    /// Number of instance blocks at this width.
    fn instance_blocks<const D: usize>(schema: &SketchSchema<D>) -> usize;
}

impl SchemaLanes for u64 {
    fn seed_blocks<const D: usize>(schema: &SketchSchema<D>, dim: usize) -> &[XiBlock<Self>] {
        schema.seed_blocks(dim)
    }

    fn instance_blocks<const D: usize>(schema: &SketchSchema<D>) -> usize {
        schema.instance_blocks()
    }
}

impl SchemaLanes for WideLane {
    fn seed_blocks<const D: usize>(schema: &SketchSchema<D>, dim: usize) -> &[XiBlock<Self>] {
        schema.seed_blocks_wide(dim)
    }

    fn instance_blocks<const D: usize>(schema: &SketchSchema<D>) -> usize {
        schema.instance_blocks_wide()
    }
}

impl SchemaLanes for WideLane512 {
    fn seed_blocks<const D: usize>(schema: &SketchSchema<D>, dim: usize) -> &[XiBlock<Self>] {
        schema.seed_blocks_wide512(dim)
    }

    fn instance_blocks<const D: usize>(schema: &SketchSchema<D>) -> usize {
        schema.instance_blocks_wide512()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schema_shape_and_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(4, 3),
            [DimSpec::dyadic(8); 2],
        );
        let b = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(4, 3),
            [DimSpec::dyadic(8); 2],
        );
        assert_ne!(a.id(), b.id());
        assert_eq!(a.instances(), 12);
        assert_eq!(a.instance_seeds(0).len(), 2);
        // Seeds differ across instances and dims with overwhelming probability.
        assert_ne!(a.instance_seeds(0), a.instance_seeds(1));
    }

    #[test]
    fn coordinate_validation() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = SketchSchema::<1>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(1, 1),
            [DimSpec::dyadic(4)],
        );
        assert!(s.check_coord(0, 15).is_ok());
        assert_eq!(
            s.check_coord(0, 16),
            Err(SketchError::DomainOverflow {
                coord: 16,
                max: 15,
                dim: 0
            })
        );
    }

    #[test]
    fn seed_bits_accounting() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = SketchSchema::<1>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(2, 2),
            [DimSpec::dyadic(10)],
        );
        // node bits = 11, per-family seed = 2*11+1 = 23 bits, 4 instances.
        assert_eq!(s.seed_bits(), 4 * 23);
    }

    #[test]
    fn seed_blocks_cover_all_instances() {
        let mut rng = StdRng::seed_from_u64(4);
        // 65 instances: one full 64-lane block plus a 1-lane tail.
        let s = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(13, 5),
            [DimSpec::dyadic(8); 2],
        );
        assert_eq!(s.instance_blocks(), 2);
        for dim in 0..2 {
            let blocks = s.seed_blocks(dim);
            assert_eq!(blocks.len(), 2);
            assert_eq!(blocks[0].lanes(), 64);
            assert_eq!(blocks[1].lanes(), 1);
        }
        // Block lanes evaluate exactly the per-instance families.
        let ctx = &s.xi_ctx()[1];
        let pre = ctx.precompute(37);
        for inst in [0usize, 63, 64] {
            let fam = ctx.family(s.instance_seeds(inst)[1]);
            let block = &s.seed_blocks(1)[inst / 64];
            let lane = inst % 64;
            let got = 1 - 2 * ((block.eval_mask(pre) >> lane) & 1) as i64;
            assert_eq!(got, fam.xi_pre(pre), "instance {inst}");
        }
    }

    #[test]
    fn wide_seed_blocks_mirror_narrow_packing() {
        let mut rng = StdRng::seed_from_u64(5);
        // 300 instances: one full 256-lane block plus a 44-lane tail
        // (five 64-lane blocks minus the tail difference).
        let s = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(150, 2),
            [DimSpec::dyadic(8); 2],
        );
        assert_eq!(s.instance_blocks(), 5);
        assert_eq!(s.instance_blocks_wide(), 2);
        for dim in 0..2 {
            let wide = s.seed_blocks_wide(dim);
            assert_eq!(wide.len(), 2);
            assert_eq!(wide[0].lanes(), 256);
            assert_eq!(wide[1].lanes(), 44);
        }
        // Every wide lane evaluates exactly its instance's family.
        let ctx = &s.xi_ctx()[0];
        let pre = ctx.precompute(99);
        for inst in [0usize, 63, 64, 255, 256, 299] {
            let fam = ctx.family(s.instance_seeds(inst)[0]);
            let block = &s.seed_blocks_wide(0)[inst / 256];
            let got = 1 - 2 * block.eval_mask(pre).bit(inst % 256) as i64;
            assert_eq!(got, fam.xi_pre(pre), "instance {inst}");
        }
    }

    #[test]
    fn wide512_seed_blocks_mirror_narrow_packing() {
        let mut rng = StdRng::seed_from_u64(6);
        // 520 instances: one full 512-lane block plus an 8-lane tail.
        let s = SketchSchema::<1>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(260, 2),
            [DimSpec::dyadic(8)],
        );
        assert_eq!(s.instance_blocks(), 9);
        assert_eq!(s.instance_blocks_wide(), 3);
        assert_eq!(s.instance_blocks_wide512(), 2);
        let blocks = s.seed_blocks_wide512(0);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].lanes(), 512);
        assert_eq!(blocks[1].lanes(), 8);
        assert_eq!(blocks[1].occupied_words(), 1);
        // Every 512-lane evaluates exactly its instance's family.
        let ctx = &s.xi_ctx()[0];
        let pre = ctx.precompute(99);
        for inst in [0usize, 63, 64, 255, 256, 511, 512, 519] {
            let fam = ctx.family(s.instance_seeds(inst)[0]);
            let block = &s.seed_blocks_wide512(0)[inst / 512];
            let got = 1 - 2 * block.eval_mask(pre).bit(inst % 512) as i64;
            assert_eq!(got, fam.xi_pre(pre), "instance {inst}");
        }
    }

    #[test]
    fn max_level_clamped() {
        let d = DimSpec::with_max_level(6, 99);
        assert_eq!(d.max_level, 6);
        let d = DimSpec::with_max_level(6, 2);
        assert_eq!(d.max_level, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_boost_shape_rejected() {
        let _ = BoostShape::new(0, 3);
    }
}

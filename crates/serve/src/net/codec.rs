//! The compact binary query/response codec of the network front-end.
//!
//! Everything on the wire is a **frame**: a 12-byte little-endian header
//! followed by `len` payload bytes:
//!
//! ```text
//! ┌───────────┬──────────┬──────────┬──────────────┬────────────────┬─────────────┐
//! │ magic u16 │ ver  u8  │ op   u8  │ frame id u32 │ len        u32 │ payload ... │
//! │  0x534B   │  0x02    │  opcode  │  pipelining  │  payload bytes │             │
//! └───────────┴──────────┴──────────┴──────────────┴────────────────┴─────────────┘
//! ```
//!
//! The **frame id** is the pipelining key: a client may keep many request
//! frames in flight on one connection, and the server answers each with a
//! reply frame carrying the *same* id — possibly **out of request order**,
//! because batches from different frames (and different connections)
//! complete whenever their kernel sweep does. Ids are chosen by the
//! client; the only rule is that an id must not be reused while its reply
//! is still outstanding. `Pong` echoes the `Ping`'s id.
//!
//! A `QueryBatch` payload is `count: u16` followed by `count` encoded
//! [`WireQuery`]s; the matching `ReplyBatch` carries `count` encoded
//! [`WireReply`]s **in request order within the frame**, one per query — a
//! per-query failure (bad request, load shed, estimator error) is an error
//! *entry*, never a broken stream, so one misrouted query cannot poison
//! its batch-mates' answers. Connection-level failures (bad magic, unknown
//! version, truncated frames, a duplicated in-flight id) are unrecoverable
//! by design: the server drops the connection rather than guessing at
//! resynchronization.
//!
//! This module owns the *format* — constants, payload encodings, error
//! taxonomy. Actually moving frames over sockets (blocking helpers and the
//! reactor's incremental decoder) lives in [`super::io`].
//!
//! The codec is deliberately self-contained `std`-only code (no serde):
//! the vendored-dependency policy keeps the wire format free of external
//! crates, the framing must be stable across refactors of the in-process
//! types, and fixed-width little-endian fields make the format easy to
//! implement from any language.

use std::fmt;

/// Frame magic, `"SK"` little-endian — rejects non-protocol peers fast.
pub const MAGIC: u16 = 0x4B53;

/// Protocol version carried by every frame; peers reject mismatches
/// rather than misinterpreting payload bytes. Version 2 added the
/// `frame id` header field (pipelined out-of-order replies); version 3
/// added the partial-estimate query kinds and reply (the scatter-gather
/// distributed query path).
pub const VERSION: u8 = 3;

/// Bytes in a frame header: magic, version, opcode, frame id, payload len.
pub const HEADER_LEN: usize = 12;

/// Hard cap on a frame payload (1 MiB): a corrupt or hostile length field
/// must not make a peer allocate unboundedly.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Most queries a single batch frame may carry; bounds the work one frame
/// can enqueue (admission control still applies per query).
pub const MAX_BATCH: usize = 4096;

/// Most atomic-estimate entries a partial-estimate reply may declare
/// (`k1 · k2`); 1 MiB of `f64`s, matching [`MAX_PAYLOAD`] — a hostile
/// shape field must not drive a huge allocation before the length check.
pub const MAX_PARTIAL_GRID: usize = 1 << 17;

/// Frame kinds. Requests flow client → server, replies server → client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// A batch of queries (client → server).
    QueryBatch = 0x01,
    /// Liveness probe (client → server).
    Ping = 0x02,
    /// Per-query replies, in request order (server → client).
    ReplyBatch = 0x81,
    /// Liveness answer (server → client).
    Pong = 0x82,
}

impl Opcode {
    pub(crate) fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            0x01 => Ok(Opcode::QueryBatch),
            0x02 => Ok(Opcode::Ping),
            0x81 => Ok(Opcode::ReplyBatch),
            0x82 => Ok(Opcode::Pong),
            other => Err(WireError::BadOpcode(other)),
        }
    }
}

/// One query as it travels on the wire. Dimensionality is explicit (a `u8`
/// count before the coordinates), so the codec is independent of the
/// server's const-generic `D`; the server validates the arity against its
/// service and answers a mismatch with [`WireErrorCode::BadRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireQuery {
    /// Range-selectivity estimate over the store's registered range query:
    /// per dimension a closed `[lo, hi]` coordinate pair.
    Range {
        /// Index of the target store in the service's store table.
        store: u32,
        /// Per-dimension `(lo, hi)` bounds of the query rectangle.
        ranges: Vec<(u64, u64)>,
    },
    /// Stabbing-count estimate at a point.
    Stab {
        /// Index of the target store in the service's store table.
        store: u32,
        /// The stabbing point, one coordinate per dimension.
        point: Vec<u64>,
    },
    /// Spatial-join estimate over two stores sharing the join's schema.
    Join {
        /// Index of the join's R-side store.
        r_store: u32,
        /// Index of the join's S-side store.
        s_store: u32,
    },
    /// Fault injection: makes the handler panic while it holds its
    /// [`crate::ContextPool`] slot. Honored only when the server was
    /// configured with fault injection enabled (soak tests / CI); answered
    /// with [`WireErrorCode::BadRequest`] otherwise.
    FaultPanic,
    /// Like [`WireQuery::Range`], but answered with the **unboosted**
    /// partial grid ([`WireReply::Partial`]) instead of a finished
    /// estimate — the mergeable form a cluster router gathers from shard
    /// owners (see [`crate::cluster`]).
    RangePartial {
        /// Index of the target store in the service's store table.
        store: u32,
        /// Per-dimension `(lo, hi)` bounds of the query rectangle.
        ranges: Vec<(u64, u64)>,
    },
    /// Like [`WireQuery::Stab`], but answered with the unboosted partial
    /// grid.
    StabPartial {
        /// Index of the target store in the service's store table.
        store: u32,
        /// The stabbing point, one coordinate per dimension.
        point: Vec<u64>,
    },
}

const QUERY_RANGE: u8 = 0;
const QUERY_STAB: u8 = 1;
const QUERY_JOIN: u8 = 2;
const QUERY_FAULT_PANIC: u8 = 3;
const QUERY_RANGE_PARTIAL: u8 = 4;
const QUERY_STAB_PARTIAL: u8 = 5;

/// One per-query reply. `Estimate` carries the boosted value *and* every
/// row mean, bit-exact (f64 bit patterns travel as `u64`), so a networked
/// client can hold the server to the same bit-identity contract the
/// in-process differential suites use.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    /// A successful estimate: the boosted value and the `k2` row means.
    Estimate {
        /// The boosted (median-of-means) estimate.
        value: f64,
        /// The row means the median was taken over.
        row_means: Vec<f64>,
    },
    /// A per-query failure; the batch's other entries are unaffected.
    Error {
        /// Machine-readable failure class.
        code: WireErrorCode,
        /// Human-readable detail (diagnostics only; not part of the
        /// stability contract).
        message: String,
    },
    /// An unboosted partial-estimate grid (the answer to
    /// [`WireQuery::RangePartial`] / [`WireQuery::StabPartial`]): the
    /// boosting-grid shape plus `k1 · k2` instance-major atomic estimates,
    /// bit-exact. The gatherer merges grids instance-wise and boosts once.
    Partial {
        /// Boosting-grid columns (means per row).
        k1: u16,
        /// Boosting-grid rows (the median is over `k2` row means).
        k2: u16,
        /// The atomic grid, instance-major, `k1 · k2` entries.
        atomic: Vec<f64>,
    },
}

const REPLY_ESTIMATE: u8 = 0;
const REPLY_PARTIAL: u8 = 0x10;

/// Machine-readable per-query failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireErrorCode {
    /// The server's bounded in-flight queue was full: the query was shed
    /// at admission without being evaluated. Retry with backoff.
    Overloaded = 1,
    /// The query was malformed for this service (unknown store index,
    /// dimensionality mismatch, inverted interval, disabled fault hook).
    BadRequest = 2,
    /// The estimator rejected the query (e.g. a coordinate beyond the
    /// sketch domain).
    Estimate = 3,
    /// The handler failed internally (e.g. a panic unwound out of the
    /// evaluation pass); the worker slot recovers, the query does not.
    Internal = 4,
}

impl WireErrorCode {
    fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            1 => Ok(WireErrorCode::Overloaded),
            2 => Ok(WireErrorCode::BadRequest),
            3 => Ok(WireErrorCode::Estimate),
            4 => Ok(WireErrorCode::Internal),
            other => Err(WireError::BadStatus(other)),
        }
    }
}

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure not covered by a more specific variant.
    Io(std::io::Error),
    /// The peer went away: EOF (clean or mid-frame), connection reset,
    /// aborted, or a broken pipe. The connection is unusable; a client
    /// recovers with [`super::SketchClient::reconnect`].
    Disconnected,
    /// A configured read/write timeout elapsed mid-operation. The stream
    /// may now be mid-frame, so the connection is unusable for framing;
    /// a client recovers with [`super::SketchClient::reconnect`].
    Timeout,
    /// A reply frame arrived whose id matches no in-flight request (or a
    /// ticket was redeemed twice / on the wrong connection).
    UnknownFrame(u32),
    /// The peer did not send this protocol's magic.
    BadMagic(u16),
    /// The peer speaks an incompatible protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadOpcode(u8),
    /// Unknown query kind inside a `QueryBatch` payload.
    BadQueryKind(u8),
    /// Unknown reply status inside a `ReplyBatch` payload.
    BadStatus(u8),
    /// A declared length exceeds [`MAX_PAYLOAD`] / [`MAX_BATCH`].
    Oversize(usize),
    /// The payload ended before the structure it declared.
    Truncated,
    /// The payload continued past the structure it declared.
    TrailingBytes(usize),
    /// An error message was not valid UTF-8.
    BadUtf8,
    /// The reply count does not match the request count.
    ReplyArity {
        /// Queries sent.
        sent: usize,
        /// Replies received.
        got: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::Timeout => write!(f, "operation timed out"),
            WireError::UnknownFrame(id) => write!(f, "reply for unknown frame id {id}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::BadQueryKind(k) => write!(f, "unknown query kind {k}"),
            WireError::BadStatus(s) => write!(f, "unknown reply status {s}"),
            WireError::Oversize(n) => write!(f, "declared length {n} exceeds the protocol cap"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
            WireError::ReplyArity { sent, got } => {
                write!(f, "sent {sent} queries but received {got} replies")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a `QueryBatch` payload.
pub fn encode_queries(queries: &[WireQuery]) -> Vec<u8> {
    assert!(queries.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
    let mut out = Vec::with_capacity(4 + queries.len() * 24);
    out.extend_from_slice(&(queries.len() as u16).to_le_bytes());
    for q in queries {
        match q {
            WireQuery::Range { store, ranges } => {
                out.push(QUERY_RANGE);
                out.extend_from_slice(&store.to_le_bytes());
                out.push(ranges.len() as u8);
                for &(lo, hi) in ranges {
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
            }
            WireQuery::Stab { store, point } => {
                out.push(QUERY_STAB);
                out.extend_from_slice(&store.to_le_bytes());
                out.push(point.len() as u8);
                for &c in point {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            WireQuery::Join { r_store, s_store } => {
                out.push(QUERY_JOIN);
                out.extend_from_slice(&r_store.to_le_bytes());
                out.extend_from_slice(&s_store.to_le_bytes());
            }
            WireQuery::FaultPanic => out.push(QUERY_FAULT_PANIC),
            WireQuery::RangePartial { store, ranges } => {
                out.push(QUERY_RANGE_PARTIAL);
                out.extend_from_slice(&store.to_le_bytes());
                out.push(ranges.len() as u8);
                for &(lo, hi) in ranges {
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
            }
            WireQuery::StabPartial { store, point } => {
                out.push(QUERY_STAB_PARTIAL);
                out.extend_from_slice(&store.to_le_bytes());
                out.push(point.len() as u8);
                for &c in point {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Decodes a `QueryBatch` payload; the whole payload must be consumed.
pub fn decode_queries(payload: &[u8]) -> Result<Vec<WireQuery>, WireError> {
    let mut r = Reader::new(payload);
    let count = r.u16()? as usize;
    if count > MAX_BATCH {
        return Err(WireError::Oversize(count));
    }
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        queries.push(match r.u8()? {
            QUERY_RANGE => {
                let store = r.u32()?;
                let dims = r.u8()? as usize;
                let mut ranges = Vec::with_capacity(dims);
                for _ in 0..dims {
                    ranges.push((r.u64()?, r.u64()?));
                }
                WireQuery::Range { store, ranges }
            }
            QUERY_STAB => {
                let store = r.u32()?;
                let dims = r.u8()? as usize;
                let mut point = Vec::with_capacity(dims);
                for _ in 0..dims {
                    point.push(r.u64()?);
                }
                WireQuery::Stab { store, point }
            }
            QUERY_JOIN => WireQuery::Join {
                r_store: r.u32()?,
                s_store: r.u32()?,
            },
            QUERY_FAULT_PANIC => WireQuery::FaultPanic,
            QUERY_RANGE_PARTIAL => {
                let store = r.u32()?;
                let dims = r.u8()? as usize;
                let mut ranges = Vec::with_capacity(dims);
                for _ in 0..dims {
                    ranges.push((r.u64()?, r.u64()?));
                }
                WireQuery::RangePartial { store, ranges }
            }
            QUERY_STAB_PARTIAL => {
                let store = r.u32()?;
                let dims = r.u8()? as usize;
                let mut point = Vec::with_capacity(dims);
                for _ in 0..dims {
                    point.push(r.u64()?);
                }
                WireQuery::StabPartial { store, point }
            }
            other => return Err(WireError::BadQueryKind(other)),
        });
    }
    r.finish()?;
    Ok(queries)
}

/// Encodes a `ReplyBatch` payload.
pub fn encode_replies(replies: &[WireReply]) -> Vec<u8> {
    assert!(replies.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
    let mut out = Vec::with_capacity(4 + replies.len() * 32);
    out.extend_from_slice(&(replies.len() as u16).to_le_bytes());
    for reply in replies {
        match reply {
            WireReply::Estimate { value, row_means } => {
                out.push(REPLY_ESTIMATE);
                out.extend_from_slice(&value.to_bits().to_le_bytes());
                out.extend_from_slice(&(row_means.len() as u16).to_le_bytes());
                for &m in row_means {
                    out.extend_from_slice(&m.to_bits().to_le_bytes());
                }
            }
            WireReply::Error { code, message } => {
                out.push(*code as u8);
                let bytes = message.as_bytes();
                let len = bytes.len().min(u16::MAX as usize);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&bytes[..len]);
            }
            WireReply::Partial { k1, k2, atomic } => {
                assert_eq!(
                    atomic.len(),
                    *k1 as usize * *k2 as usize,
                    "partial grid length must match its k1 x k2 shape"
                );
                out.push(REPLY_PARTIAL);
                out.extend_from_slice(&k1.to_le_bytes());
                out.extend_from_slice(&k2.to_le_bytes());
                for &a in atomic {
                    out.extend_from_slice(&a.to_bits().to_le_bytes());
                }
            }
        }
    }
    out
}

/// Decodes a `ReplyBatch` payload; the whole payload must be consumed.
pub fn decode_replies(payload: &[u8]) -> Result<Vec<WireReply>, WireError> {
    let mut r = Reader::new(payload);
    let count = r.u16()? as usize;
    if count > MAX_BATCH {
        return Err(WireError::Oversize(count));
    }
    let mut replies = Vec::with_capacity(count);
    for _ in 0..count {
        replies.push(match r.u8()? {
            REPLY_ESTIMATE => {
                let value = f64::from_bits(r.u64()?);
                let rows = r.u16()? as usize;
                let mut row_means = Vec::with_capacity(rows);
                for _ in 0..rows {
                    row_means.push(f64::from_bits(r.u64()?));
                }
                WireReply::Estimate { value, row_means }
            }
            REPLY_PARTIAL => {
                let k1 = r.u16()?;
                let k2 = r.u16()?;
                let grid = k1 as usize * k2 as usize;
                if grid > MAX_PARTIAL_GRID {
                    return Err(WireError::Oversize(grid));
                }
                let mut atomic = Vec::with_capacity(grid);
                for _ in 0..grid {
                    atomic.push(f64::from_bits(r.u64()?));
                }
                WireReply::Partial { k1, k2, atomic }
            }
            status => {
                let code = WireErrorCode::from_u8(status)?;
                let len = r.u16()? as usize;
                let message =
                    String::from_utf8(r.bytes(len)?.to_vec()).map_err(|_| WireError::BadUtf8)?;
                WireReply::Error { code, message }
            }
        });
    }
    r.finish()?;
    Ok(replies)
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.at))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_query(rng: &mut StdRng) -> WireQuery {
        match rng.gen_range(0..6u32) {
            0 => WireQuery::Range {
                store: rng.gen_range(0..9u32),
                ranges: (0..rng.gen_range(1..=4usize))
                    .map(|_| {
                        let lo = rng.gen_range(0..u64::MAX / 2);
                        (lo, lo + rng.gen_range(0..1000u64))
                    })
                    .collect(),
            },
            1 => WireQuery::Stab {
                store: rng.gen_range(0..9u32),
                point: (0..rng.gen_range(1..=4usize))
                    .map(|_| rng.gen_range(0..u64::MAX))
                    .collect(),
            },
            2 => WireQuery::Join {
                r_store: rng.gen_range(0..9u32),
                s_store: rng.gen_range(0..9u32),
            },
            3 => WireQuery::FaultPanic,
            4 => WireQuery::RangePartial {
                store: rng.gen_range(0..9u32),
                ranges: (0..rng.gen_range(1..=4usize))
                    .map(|_| {
                        let lo = rng.gen_range(0..u64::MAX / 2);
                        (lo, lo + rng.gen_range(0..1000u64))
                    })
                    .collect(),
            },
            _ => WireQuery::StabPartial {
                store: rng.gen_range(0..9u32),
                point: (0..rng.gen_range(1..=4usize))
                    .map(|_| rng.gen_range(0..u64::MAX))
                    .collect(),
            },
        }
    }

    fn rand_reply(rng: &mut StdRng) -> WireReply {
        match rng.gen_range(0..4u32) {
            0 | 1 => WireReply::Estimate {
                value: f64::from_bits(rng.gen_range(0..u64::MAX)),
                row_means: (0..rng.gen_range(0..6usize))
                    .map(|_| rng.gen_range(0..1u64 << 52) as f64 * 0.5)
                    .collect(),
            },
            2 => {
                let k1 = rng.gen_range(1..=6u16);
                let k2 = rng.gen_range(1..=6u16);
                WireReply::Partial {
                    k1,
                    k2,
                    atomic: (0..k1 as usize * k2 as usize)
                        .map(|_| f64::from_bits(rng.gen_range(0..u64::MAX)))
                        .collect(),
                }
            }
            _ => {
                let code = match rng.gen_range(1..=4u8) {
                    1 => WireErrorCode::Overloaded,
                    2 => WireErrorCode::BadRequest,
                    3 => WireErrorCode::Estimate,
                    _ => WireErrorCode::Internal,
                };
                let len = rng.gen_range(0..40usize);
                WireReply::Error {
                    code,
                    message: "shard fault: 早め".chars().cycle().take(len).collect(),
                }
            }
        }
    }

    /// Seeded stand-in for a property test: random batches round-trip
    /// bit-exactly through encode → decode.
    #[test]
    fn queries_and_replies_roundtrip() {
        let mut rng = StdRng::seed_from_u64(41);
        for round in 0..200 {
            let queries: Vec<WireQuery> = (0..rng.gen_range(0..40usize))
                .map(|_| rand_query(&mut rng))
                .collect();
            let replies: Vec<WireReply> = (0..rng.gen_range(0..40usize))
                .map(|_| rand_reply(&mut rng))
                .collect();

            assert_eq!(
                decode_queries(&encode_queries(&queries)).unwrap(),
                queries,
                "round {round}"
            );
            let back = decode_replies(&encode_replies(&replies)).unwrap();
            assert_eq!(back.len(), replies.len(), "round {round}");
            for (a, b) in back.iter().zip(replies.iter()) {
                match (a, b) {
                    // NaN-safe: compare bit patterns, not f64 equality.
                    (
                        WireReply::Estimate {
                            value: va,
                            row_means: ra,
                        },
                        WireReply::Estimate {
                            value: vb,
                            row_means: rb,
                        },
                    ) => {
                        assert_eq!(va.to_bits(), vb.to_bits(), "round {round}");
                        assert_eq!(ra.len(), rb.len());
                        for (x, y) in ra.iter().zip(rb.iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "round {round}");
                        }
                    }
                    (
                        WireReply::Partial {
                            k1: ka,
                            k2: kb,
                            atomic: aa,
                        },
                        WireReply::Partial {
                            k1: kc,
                            k2: kd,
                            atomic: ab,
                        },
                    ) => {
                        assert_eq!((ka, kb), (kc, kd), "round {round}");
                        assert_eq!(aa.len(), ab.len());
                        for (x, y) in aa.iter().zip(ab.iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "round {round}");
                        }
                    }
                    (a, b) => assert_eq!(a, b, "round {round}"),
                }
            }
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let payload = encode_queries(&[WireQuery::Stab {
            store: 1,
            point: vec![7, 9],
        }]);
        for cut in 0..payload.len() {
            assert!(
                decode_queries(&payload[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert!(matches!(
            decode_queries(&padded),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn oversize_batch_counts_are_rejected_structurally() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode_queries(&payload),
            Err(WireError::Oversize(_))
        ));
    }
}

//! Dyadic-aligned domain partitioning for sharded sketch stores.
//!
//! A [`DomainPartition`] splits a power-of-two coordinate domain into `N`
//! contiguous shard regions. Boundaries are arbitrary coordinates, but
//! every coordinate is maximally dyadic-aligned *at its own level*: a
//! boundary `b` is a multiple of `2^(b.trailing_zeros())`, so the partition
//! as a whole behaves like a dyadic slab assignment at level
//! [`DomainPartition::slab_bits`] — the coarsest level at which **all**
//! current boundaries are node-aligned. Two properties follow:
//!
//! * **Covers split cleanly.** Splitting an interval at shard boundaries
//!   ([`DomainPartition::split_interval`]) yields pieces whose minimal
//!   dyadic covers ([`crate::cover::interval_cover`]) lie entirely inside
//!   their shard's span — no cover node ever straddles a shard boundary,
//!   because a minimal cover's nodes are contained in the covered interval
//!   and each piece is contained in one shard's span.
//! * **Routing is a binary search.** [`DomainPartition::shard_of`] is a
//!   `partition_point` over the boundary list — a handful of well-predicted
//!   comparisons, cheap enough for per-object ingest routing.
//!
//! The balanced constructor [`DomainPartition::new`] reproduces the classic
//! slab assignment (domain divided into `2^s` equal dyadic slabs, shard `j`
//! owning a contiguous run), while the topology operators
//! ([`DomainPartition::split_at`], [`DomainPartition::merge_at`],
//! [`DomainPartition::move_boundary`]) let a rebalancer deform that layout
//! online — one boundary at a time, each producing a new valid partition —
//! without ever breaking the cover-splitting guarantee.

use crate::node::NodeId;
use geometry::{Coord, Interval};

/// A partition of the domain `[0, 2^bits)` into contiguous shard regions,
/// described by the start coordinate of each shard.
///
/// Invariants (upheld by every constructor and operator):
/// * `starts` is non-empty and `starts[0] == 0`;
/// * `starts` is strictly ascending;
/// * every start is `< 2^bits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainPartition {
    bits: u32,
    /// Start coordinate of each shard; shard `s` owns
    /// `[starts[s], starts[s+1])` (the last shard runs to `2^bits`).
    starts: Vec<Coord>,
}

impl DomainPartition {
    /// Creates a balanced partition of `[0, 2^bits)` into `shards` regions.
    ///
    /// The domain is divided into `2^s` equal dyadic slabs (the smallest
    /// power of two ≥ `shards`) and slab `j` is assigned to shard
    /// `⌊j·N/2^s⌋` — the standard balanced contiguous assignment (every
    /// shard gets `⌊2^s/N⌋` or `⌈2^s/N⌉` slabs).
    ///
    /// The effective shard count is clamped to the domain size (a 2-bit
    /// domain cannot feed more than 4 shards); [`DomainPartition::shards`]
    /// reports the effective count.
    pub fn new(bits: u32, shards: usize) -> Self {
        assert!(bits <= 62, "domain bits out of range");
        assert!(shards >= 1, "partitions need at least one shard");
        let size = 1u64 << bits;
        let shards = (shards as u64).min(size) as usize;
        let slabs = (shards as u64).next_power_of_two();
        let slab_bits = bits - slabs.trailing_zeros();
        let starts = (0..shards as u64)
            .map(|s| (s * slabs).div_ceil(shards as u64) << slab_bits)
            .collect();
        Self { bits, starts }
    }

    /// Rebuilds a partition from its [`DomainPartition::boundaries`] list,
    /// e.g. when restoring a store snapshot. Returns `None` unless `starts`
    /// satisfies the type's invariants (non-empty, `starts[0] == 0`,
    /// strictly ascending, all `< 2^bits`).
    pub fn from_boundaries(bits: u32, starts: Vec<Coord>) -> Option<Self> {
        if bits > 62 || starts.first() != Some(&0) {
            return None;
        }
        let ascending = starts.windows(2).all(|w| w[0] < w[1]);
        if !ascending || *starts.last().expect("non-empty") >= (1u64 << bits) {
            return None;
        }
        Some(Self { bits, starts })
    }

    /// Domain bits this partition was built for.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// Start coordinate of each shard, ascending; shard `s` owns
    /// `[starts[s], starts[s+1])` and the last shard runs to the end of the
    /// domain. Feed back through [`DomainPartition::from_boundaries`] to
    /// reconstruct the partition.
    pub fn boundaries(&self) -> &[Coord] {
        &self.starts
    }

    /// The coarsest dyadic level at which every current shard boundary is
    /// node-aligned: boundaries are multiples of `2^slab_bits`, so dyadic
    /// nodes at levels ≤ `slab_bits` never straddle a shard boundary.
    ///
    /// Derived from the boundary list (the minimum of each nonzero
    /// boundary's trailing-zero count), so it tightens as splits introduce
    /// finer boundaries and relaxes again when merges remove them.
    pub fn slab_bits(&self) -> u32 {
        self.starts
            .iter()
            .skip(1)
            .map(|s| s.trailing_zeros())
            .min()
            .unwrap_or(self.bits)
            .min(self.bits)
    }

    /// The shard owning coordinate `x`.
    pub fn shard_of(&self, x: Coord) -> usize {
        debug_assert!(x < (1u64 << self.bits));
        // starts[0] == 0 ≤ x, so the partition point is at least 1.
        self.starts.partition_point(|&s| s <= x) - 1
    }

    /// The contiguous coordinate range owned by shard `s`.
    pub fn span(&self, s: usize) -> Interval {
        assert!(s < self.shards(), "shard index out of range");
        let end = self.starts.get(s + 1).copied().unwrap_or(1u64 << self.bits);
        Interval::new(self.starts[s], end - 1)
    }

    /// Splits shard `shard` in two at coordinate `at`: the left child keeps
    /// `[span.lo(), at)`, the right child takes `[at, span.hi()]`, and
    /// every later shard's index shifts up by one. Returns `None` unless
    /// `at` lies strictly inside the shard's span (both children must be
    /// non-empty).
    ///
    /// Any interior coordinate is a valid split point — alignment is
    /// automatic, because [`DomainPartition::slab_bits`] is derived from
    /// the boundaries rather than fixed up front.
    pub fn split_at(&self, shard: usize, at: Coord) -> Option<Self> {
        if shard >= self.shards() {
            return None;
        }
        let span = self.span(shard);
        if at <= span.lo() || at > span.hi() {
            return None;
        }
        let mut starts = self.starts.clone();
        starts.insert(shard + 1, at);
        Some(Self {
            bits: self.bits,
            starts,
        })
    }

    /// Merges shard `left` with its right neighbour `left + 1` into one
    /// shard owning both spans; every later shard's index shifts down by
    /// one. Returns `None` if `left` is the last shard (nothing to its
    /// right).
    pub fn merge_at(&self, left: usize) -> Option<Self> {
        if left + 1 >= self.shards() {
            return None;
        }
        let mut starts = self.starts.clone();
        starts.remove(left + 1);
        Some(Self {
            bits: self.bits,
            starts,
        })
    }

    /// Moves the boundary between shards `boundary - 1` and `boundary` to
    /// coordinate `at`, shifting load between the two neighbours without
    /// changing the shard count. Returns `None` unless
    /// `1 ≤ boundary < shards`, `at` actually moves the boundary, and `at`
    /// keeps both neighbours non-empty (strictly between shard
    /// `boundary - 1`'s start and shard `boundary`'s end).
    pub fn move_boundary(&self, boundary: usize, at: Coord) -> Option<Self> {
        if boundary == 0 || boundary >= self.shards() {
            return None;
        }
        let right_end = self
            .starts
            .get(boundary + 1)
            .copied()
            .unwrap_or(1u64 << self.bits);
        if at <= self.starts[boundary - 1] || at >= right_end || at == self.starts[boundary] {
            return None;
        }
        let mut starts = self.starts.clone();
        starts[boundary] = at;
        Some(Self {
            bits: self.bits,
            starts,
        })
    }

    /// The inclusive range of shards whose spans overlap `iv`.
    pub fn shards_overlapping(&self, iv: &Interval) -> std::ops::RangeInclusive<usize> {
        self.shard_of(iv.lo())..=self.shard_of(iv.hi())
    }

    /// Splits `iv` at shard boundaries into `(shard, piece)` pairs in
    /// ascending order. The pieces partition `iv` exactly, each lies inside
    /// its shard's [`DomainPartition::span`], and — because every boundary
    /// is maximally dyadic-aligned at its own level — each piece's minimal
    /// dyadic cover stays inside that span (no cover node crosses a shard
    /// boundary).
    pub fn split_interval(&self, iv: &Interval) -> Vec<(usize, Interval)> {
        let mut out = Vec::new();
        let mut cur = iv.lo();
        loop {
            let s = self.shard_of(cur);
            let end = self.span(s).hi().min(iv.hi());
            out.push((s, Interval::new(cur, end)));
            if end == iv.hi() {
                return out;
            }
            cur = end + 1;
        }
    }

    /// Whether dyadic node `id` (heap numbering of
    /// [`crate::node::DyadicDomain`]) lies entirely inside one shard's span —
    /// true for every node of every split piece's cover. Exposed for tests
    /// and diagnostics.
    pub fn node_within_one_shard(&self, domain: &crate::node::DyadicDomain, id: NodeId) -> bool {
        let range = domain.node_range(id);
        self.shard_of(range.lo()) == self.shard_of(range.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{interval_cover, point_cover};
    use crate::node::DyadicDomain;

    /// Shared structural check: spans are contiguous, disjoint, cover the
    /// domain, sit on `slab_bits` multiples, and agree with `shard_of`.
    fn assert_valid(p: &DomainPartition, label: &str) {
        let size = 1u64 << p.bits();
        let mut next = 0u64;
        for s in 0..p.shards() {
            let span = p.span(s);
            assert_eq!(span.lo(), next, "{label} s={s}");
            assert!(span.hi() >= span.lo());
            // Dyadic alignment: both boundaries are slab multiples.
            assert_eq!(span.lo() % (1 << p.slab_bits()), 0, "{label} s={s}");
            assert_eq!((span.hi() + 1) % (1 << p.slab_bits()), 0, "{label} s={s}");
            next = span.hi() + 1;
        }
        assert_eq!(next, size, "{label}");
        for x in 0..size {
            let s = p.shard_of(x);
            assert!(p.span(s).contains(x), "{label} x={x}");
        }
    }

    #[test]
    fn spans_partition_the_domain() {
        for bits in [3u32, 8] {
            for shards in 1..=9usize {
                let p = DomainPartition::new(bits, shards);
                assert!(p.shards() <= shards);
                assert_valid(&p, &format!("bits={bits} shards={shards}"));
            }
        }
    }

    #[test]
    fn shard_count_clamped_to_domain() {
        let p = DomainPartition::new(2, 100);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.slab_bits(), 0);
    }

    #[test]
    fn split_pieces_partition_and_stay_in_span() {
        let p = DomainPartition::new(8, 3);
        for (lo, hi) in [(0u64, 255u64), (1, 254), (17, 18), (100, 101), (0, 0)] {
            let iv = Interval::new(lo, hi);
            let pieces = p.split_interval(&iv);
            let mut next = lo;
            for (s, piece) in &pieces {
                assert_eq!(piece.lo(), next);
                assert!(p.span(*s).contains_interval(piece));
                next = piece.hi() + 1;
            }
            assert_eq!(next, hi + 1);
            // Shards appear in ascending order, once each.
            for w in pieces.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn split_covers_never_cross_shard_boundaries() {
        // The property the serving layer relies on: every cover node of a
        // split piece lies inside one shard.
        let d = DyadicDomain::new(7);
        for shards in [1usize, 2, 3, 5, 8] {
            let p = DomainPartition::new(7, shards);
            for (lo, hi) in [(0u64, 127u64), (3, 99), (64, 65), (31, 32), (15, 112)] {
                for (s, piece) in p.split_interval(&Interval::new(lo, hi)) {
                    for id in interval_cover(&d, &piece, 7) {
                        assert!(
                            p.node_within_one_shard(&d, id),
                            "shards={shards} piece=[{},{}] node {id}",
                            piece.lo(),
                            piece.hi()
                        );
                        assert!(p.span(s).contains_interval(&d.node_range(id)));
                    }
                }
            }
        }
    }

    #[test]
    fn point_covers_split_at_slab_level() {
        // Point covers stay within the owning shard up to the slab level;
        // coarser nodes necessarily span shards (they sit above the split).
        let d = DyadicDomain::new(6);
        let p = DomainPartition::new(6, 4);
        for x in [0u64, 15, 16, 33, 63] {
            let s = p.shard_of(x);
            for id in point_cover(&d, x, 6) {
                if d.level(id) <= p.slab_bits() {
                    assert!(p.span(s).contains_interval(&d.node_range(id)));
                }
            }
        }
    }

    #[test]
    fn shards_overlapping_matches_split() {
        let p = DomainPartition::new(8, 5);
        for (lo, hi) in [(0u64, 255u64), (10, 200), (60, 61), (250, 255)] {
            let iv = Interval::new(lo, hi);
            let from_split: Vec<usize> =
                p.split_interval(&iv).into_iter().map(|(s, _)| s).collect();
            let range: Vec<usize> = p.shards_overlapping(&iv).collect();
            assert_eq!(from_split, range);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = DomainPartition::new(10, 1);
        assert_eq!(p.span(0), Interval::new(0, 1023));
        assert_eq!(p.shard_of(517), 0);
        assert_eq!(p.split_interval(&Interval::new(5, 900)).len(), 1);
    }

    #[test]
    fn boundaries_roundtrip_through_from_boundaries() {
        for shards in [1usize, 3, 5, 8] {
            let p = DomainPartition::new(8, shards);
            let rebuilt = DomainPartition::from_boundaries(8, p.boundaries().to_vec())
                .expect("own boundaries are valid");
            assert_eq!(p, rebuilt);
        }
    }

    #[test]
    fn from_boundaries_rejects_invalid_lists() {
        // Empty, wrong origin, unsorted, duplicate, out of domain.
        assert!(DomainPartition::from_boundaries(8, vec![]).is_none());
        assert!(DomainPartition::from_boundaries(8, vec![1, 64]).is_none());
        assert!(DomainPartition::from_boundaries(8, vec![0, 64, 32]).is_none());
        assert!(DomainPartition::from_boundaries(8, vec![0, 64, 64]).is_none());
        assert!(DomainPartition::from_boundaries(8, vec![0, 256]).is_none());
        assert!(DomainPartition::from_boundaries(63, vec![0]).is_none());
    }

    #[test]
    fn split_at_validates_and_partitions() {
        let p = DomainPartition::new(8, 2); // boundaries [0, 128]
                                            // Split points must be strictly interior to the target span.
        assert!(p.split_at(0, 0).is_none());
        assert!(p.split_at(0, 128).is_none());
        assert!(p.split_at(1, 100).is_none());
        assert!(p.split_at(2, 10).is_none());

        let q = p.split_at(0, 32).expect("interior split");
        assert_eq!(q.shards(), 3);
        assert_eq!(q.boundaries(), &[0, 32, 128]);
        assert_eq!(q.span(0), Interval::new(0, 31));
        assert_eq!(q.span(1), Interval::new(32, 127));
        assert_valid(&q, "split_at(0, 32)");
        // Original untouched (operators are persistent).
        assert_eq!(p.shards(), 2);
    }

    #[test]
    fn merge_at_reverses_split_at() {
        let p = DomainPartition::new(8, 4);
        let split = p.split_at(2, p.span(2).lo() + 1).unwrap();
        let merged = split.merge_at(2).expect("merge children back");
        assert_eq!(merged, p);
        // The last shard has no right neighbour.
        assert!(p.merge_at(3).is_none());
        assert!(p.merge_at(4).is_none());
        assert_valid(&p.merge_at(0).unwrap(), "merge_at(0)");
    }

    #[test]
    fn move_boundary_shifts_load_between_neighbours() {
        let p = DomainPartition::new(8, 2); // boundaries [0, 128]
        let q = p.move_boundary(1, 96).expect("interior move");
        assert_eq!(q.boundaries(), &[0, 96]);
        assert_eq!(q.shard_of(97), 1);
        assert_valid(&q, "move_boundary(1, 96)");
        // Boundary 0 is pinned at the origin; moves must keep both
        // neighbours non-empty.
        assert!(p.move_boundary(0, 64).is_none());
        assert!(p.move_boundary(2, 64).is_none());
        assert!(p.move_boundary(1, 0).is_none());
        assert!(p.move_boundary(1, 255).is_some());
        assert!(q.move_boundary(1, 96).is_none()); // no-op move is rejected
    }

    #[test]
    fn slab_bits_tracks_finest_boundary() {
        let p = DomainPartition::new(8, 1);
        assert_eq!(p.slab_bits(), 8);
        let halves = p.split_at(0, 128).unwrap();
        assert_eq!(halves.slab_bits(), 7);
        let fine = halves.split_at(0, 3).unwrap();
        assert_eq!(fine.slab_bits(), 0);
        // Merging the fine boundary away restores the coarse level.
        assert_eq!(fine.merge_at(0).unwrap().slab_bits(), 7);
        assert_eq!(fine.merge_at(1).unwrap().slab_bits(), 0);
    }

    #[test]
    fn split_interval_handles_degenerate_single_slab_shards() {
        // Satellite: shards one coordinate wide. Build [0,1), [1,2), [2,8).
        let p = DomainPartition::new(3, 1)
            .split_at(0, 1)
            .unwrap()
            .split_at(1, 2)
            .unwrap();
        assert_eq!(p.span(0), Interval::new(0, 0));
        assert_eq!(p.span(1), Interval::new(1, 1));
        assert_eq!(p.slab_bits(), 0);
        assert_valid(&p, "single-slab shards");

        let pieces = p.split_interval(&Interval::new(0, 7));
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0], (0, Interval::new(0, 0)));
        assert_eq!(pieces[1], (1, Interval::new(1, 1)));
        assert_eq!(pieces[2], (2, Interval::new(2, 7)));
        // A one-coordinate query inside a one-coordinate shard.
        assert_eq!(
            p.split_interval(&Interval::new(1, 1)),
            vec![(1, Interval::new(1, 1))]
        );
        // Covers of degenerate pieces are single leaves — trivially inside.
        let d = DyadicDomain::new(3);
        for (_, piece) in p.split_interval(&Interval::new(0, 7)) {
            for id in interval_cover(&d, &piece, 3) {
                assert!(p.node_within_one_shard(&d, id));
            }
        }
    }

    #[test]
    fn split_interval_at_dyadic_block_edges() {
        // Satellite: boundaries sitting exactly on dyadic block edges at
        // several levels, and queries whose endpoints touch them.
        let d = DyadicDomain::new(6);
        let p = DomainPartition::new(6, 1)
            .split_at(0, 32) // level-5 edge
            .unwrap()
            .split_at(0, 16) // level-4 edge
            .unwrap()
            .split_at(2, 48) // level-4 edge in the right half
            .unwrap();
        assert_eq!(p.boundaries(), &[0, 16, 32, 48]);
        assert_valid(&p, "dyadic block edges");
        for (lo, hi) in [
            (0u64, 63u64),
            (15, 16), // straddles the finest boundary
            (16, 31), // exactly one shard's span
            (31, 48), // touches two boundaries
            (0, 32),
            (47, 48),
        ] {
            let iv = Interval::new(lo, hi);
            let mut next = lo;
            for (s, piece) in p.split_interval(&iv) {
                assert_eq!(piece.lo(), next);
                assert!(p.span(s).contains_interval(&piece));
                for id in interval_cover(&d, &piece, 6) {
                    assert!(
                        p.node_within_one_shard(&d, id),
                        "piece=[{},{}] node {id}",
                        piece.lo(),
                        piece.hi()
                    );
                }
                next = piece.hi() + 1;
            }
            assert_eq!(next, hi + 1);
        }
    }
}

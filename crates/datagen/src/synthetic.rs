//! Synthetic rectangle workloads matching Section 7.1 of the paper.
//!
//! "We use synthetic two-dimensional datasets, with intervals along each
//! dimension i generated independently according to a Zipfian distribution
//! with Zipf parameter z_i. The average length of an object along a
//! dimension is O(√d_i) where d_i is the size of the domain."

use crate::rng::rng_for;
use crate::zipf::{scatter, Zipf};
use geometry::{HyperRect, Interval};
use rand::Rng;

/// Specification of a synthetic rectangle dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of rectangles.
    pub count: usize,
    /// Domain bits per dimension (domain size `2^bits`).
    pub domain_bits: u32,
    /// Zipf exponent per dimension for interval positions (0 = uniform).
    pub zipf_z: f64,
    /// Mean object extent per dimension; defaults to `sqrt(domain)` via
    /// [`SyntheticSpec::paper`].
    pub mean_length: f64,
    /// Scatter Zipf ranks across the domain with a bijection (keeps skew
    /// without piling every object onto coordinate 0).
    pub scatter_ranks: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The paper's configuration: mean extent `sqrt(domain)`, scattered ranks.
    pub fn paper(count: usize, domain_bits: u32, zipf_z: f64, seed: u64) -> Self {
        let domain = (1u64 << domain_bits) as f64;
        Self {
            count,
            domain_bits,
            zipf_z,
            mean_length: domain.sqrt(),
            scatter_ranks: true,
            seed,
        }
    }

    /// Generates the dataset deterministically.
    pub fn generate<const D: usize>(&self) -> Vec<HyperRect<D>> {
        assert!(D >= 1, "dimensionality must be at least 1");
        let n = 1u64 << self.domain_bits;
        let mut rng = rng_for(self.seed);
        // Positions are drawn over the domain; for large domains, quantize
        // the Zipf rank space to at most 2^16 positions then scale, keeping
        // CDF construction cheap while preserving skew shape.
        let rank_bits = self.domain_bits.min(16);
        let ranks = 1usize << rank_bits;
        let zipf = Zipf::new(ranks, self.zipf_z);
        let shift = self.domain_bits - rank_bits;

        let mut out = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let mut ranges = [Interval::point(0); D];
            for r in &mut ranges {
                let rank = zipf.sample(&mut rng) as u64;
                let base = if self.scatter_ranks {
                    scatter(rank, rank_bits)
                } else {
                    rank
                } << shift;
                // Sub-bucket jitter so quantized positions fill the domain.
                let jitter = if shift > 0 {
                    rng.gen_range(0..(1u64 << shift))
                } else {
                    0
                };
                let lo = (base + jitter).min(n - 2);
                // Geometric-ish length with the requested mean, at least 1.
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let len = (-u.ln() * self.mean_length).ceil() as u64;
                let len = len.clamp(1, n - 1 - lo.min(n - 2)).max(1);
                let hi = (lo + len).min(n - 1);
                *r = Interval::new(lo, hi);
            }
            out.push(HyperRect::new(ranges));
        }
        out
    }
}

/// Uniform point set over the domain (for ε-join experiments).
pub fn uniform_points<const D: usize>(count: usize, domain_bits: u32, seed: u64) -> Vec<[u64; D]> {
    let n = 1u64 << domain_bits;
    let mut rng = rng_for(seed);
    (0..count)
        .map(|_| {
            let mut p = [0u64; D];
            for c in &mut p {
                *c = rng.gen_range(0..n);
            }
            p
        })
        .collect()
}

/// Uniform non-degenerate interval set (for the 1-d experiments of
/// Figures 7-8: "intervals uniformly distributed over domains of sizes
/// 16384 to 65536").
pub fn uniform_intervals(
    count: usize,
    domain_bits: u32,
    mean_length: f64,
    seed: u64,
) -> Vec<Interval> {
    let n = 1u64 << domain_bits;
    let mut rng = rng_for(seed);
    (0..count)
        .map(|_| {
            let lo = rng.gen_range(0..n - 1);
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let len = ((-u.ln() * mean_length).ceil() as u64).clamp(1, n - 1 - lo);
            Interval::new(lo, lo + len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let spec = SyntheticSpec::paper(500, 12, 0.0, 77);
        let a: Vec<HyperRect<2>> = spec.generate();
        let b: Vec<HyperRect<2>> = spec.generate();
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_domain_and_nondegenerate() {
        for z in [0.0, 1.0, 2.0] {
            let spec = SyntheticSpec::paper(1000, 10, z, 3);
            let data: Vec<HyperRect<2>> = spec.generate();
            let n = 1u64 << 10;
            for r in &data {
                for d in 0..2 {
                    assert!(r.range(d).hi() < n);
                    assert!(!r.range(d).is_degenerate(), "{r:?}");
                }
            }
        }
    }

    #[test]
    fn mean_length_in_right_ballpark() {
        let spec = SyntheticSpec::paper(20_000, 14, 0.0, 5);
        let data: Vec<HyperRect<1>> = spec.generate();
        let mean: f64 =
            data.iter().map(|r| r.range(0).length() as f64).sum::<f64>() / data.len() as f64;
        let want = (1u64 << 14) as f64; // domain
        let want = want.sqrt(); // sqrt(domain) = 128
                                // Clamping at domain edges biases down slightly; accept a wide band.
        assert!(
            mean > 0.5 * want && mean < 1.5 * want,
            "mean {mean} vs sqrt(domain) {want}"
        );
    }

    #[test]
    fn skew_shows_in_position_distribution() {
        // With z = 1.5 + no scatter, low coordinates should be much hotter.
        let spec = SyntheticSpec {
            count: 5000,
            domain_bits: 12,
            zipf_z: 1.5,
            mean_length: 4.0,
            scatter_ranks: false,
            seed: 11,
        };
        let data: Vec<HyperRect<1>> = spec.generate();
        let n = 1u64 << 12;
        let low_half = data.iter().filter(|r| r.range(0).lo() < n / 2).count();
        assert!(
            low_half > data.len() * 8 / 10,
            "zipf 1.5 should concentrate low: {low_half}/{}",
            data.len()
        );
    }

    #[test]
    fn uniform_point_and_interval_helpers() {
        let pts: Vec<[u64; 2]> = uniform_points(100, 8, 4);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(|p| p[0] < 256 && p[1] < 256));
        let ivs = uniform_intervals(100, 8, 10.0, 4);
        assert!(ivs.iter().all(|iv| iv.hi() < 256 && !iv.is_degenerate()));
        // Determinism
        assert_eq!(ivs, uniform_intervals(100, 8, 10.0, 4));
    }
}

//! Kernel-width selection shared by the build and query dispatches.
//!
//! Both kernel enums ([`crate::atomic::BuildKernel`],
//! [`crate::query::QueryKernel`]) offer the same three implementations —
//! scalar oracle, 64-lane batched, 256-lane wide — and pick the same default
//! the same way:
//!
//! 1. the `SKETCH_KERNEL` environment variable, when set to `scalar`,
//!    `batched` or `wide`, pins every default-kernel code path in the
//!    process (the tests-release CI lane uses this to run the whole suite
//!    under each kernel of the matrix); otherwise
//! 2. a width heuristic on the schema's instance count: the wide kernel
//!    amortizes its four-word lane operations once the boosting grid spans
//!    a few 64-lane blocks ([`WIDE_MIN_INSTANCES`]), below that the batched
//!    kernel's smaller blocks waste fewer tail lanes.
//!
//! Explicit kernel choices (`with_kernel`/`set_kernel`) always win over
//! both; all kernels are bit-identical, so selection is purely about speed.

use std::sync::OnceLock;

/// Instance count at which schemas default to the 256-lane wide kernels: at
/// three 64-lane blocks a single wide block is ≥75% occupied, the point
/// where fewer, fatter passes beat smaller tails.
pub const WIDE_MIN_INSTANCES: usize = 3 * fourwise::BLOCK_LANES;

/// A resolved kernel width (no `Auto`): what the dispatches branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Width {
    Scalar,
    Batched,
    Wide,
}

/// Parses a `SKETCH_KERNEL` value. Empty strings mean "no override" so CI
/// matrices can pass the variable unconditionally.
pub(crate) fn parse_override(value: &str) -> Result<Option<Width>, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "" => Ok(None),
        "scalar" => Ok(Some(Width::Scalar)),
        "batched" => Ok(Some(Width::Batched)),
        "wide" => Ok(Some(Width::Wide)),
        other => Err(format!(
            "SKETCH_KERNEL must be `scalar`, `batched` or `wide` (got `{other}`)"
        )),
    }
}

/// The process-wide `SKETCH_KERNEL` override, read once.
///
/// # Panics
///
/// Panics on an unrecognized value — a silently ignored override would make
/// a pinned test lane quietly measure the wrong kernel.
pub(crate) fn env_override() -> Option<Width> {
    static OVERRIDE: OnceLock<Option<Width>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("SKETCH_KERNEL") {
        Ok(value) => parse_override(&value).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => None,
    })
}

/// The default kernel width for a schema with `instances` boosting
/// instances: the env override when present, the width heuristic otherwise.
pub(crate) fn preferred(instances: usize) -> Width {
    env_override().unwrap_or(if instances >= WIDE_MIN_INSTANCES {
        Width::Wide
    } else {
        Width::Batched
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(""), Ok(None));
        assert_eq!(parse_override("  "), Ok(None));
        assert_eq!(parse_override("scalar"), Ok(Some(Width::Scalar)));
        assert_eq!(parse_override("Batched"), Ok(Some(Width::Batched)));
        assert_eq!(parse_override("WIDE"), Ok(Some(Width::Wide)));
        assert!(parse_override("simd").is_err());
    }

    #[test]
    fn heuristic_switches_at_threshold() {
        // Guard against env leakage from the surrounding test run: the
        // heuristic itself is only meaningful without an override.
        if env_override().is_some() {
            return;
        }
        assert_eq!(preferred(1), Width::Batched);
        assert_eq!(preferred(WIDE_MIN_INSTANCES - 1), Width::Batched);
        assert_eq!(preferred(WIDE_MIN_INSTANCES), Width::Wide);
        assert_eq!(preferred(4100), Width::Wide);
    }
}

//! Bench: serving-layer throughput — router QPS vs shard count, against
//! the direct single-sketch estimate, plus the ingest/epoch-swap path.
//!
//! The steady-state serving question: what does sharding cost a reader
//! between ingests? The router caches the cross-shard merged view per
//! worker and epoch, so warm queries should track the unsharded baseline
//! regardless of shard count; the `post_swap` case re-merges on every
//! iteration (worst case: an ingest between every query).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use datagen::SyntheticSpec;
use geometry::HyperRect;
use rand::SeedableRng;
use serve::{ContextPool, QueryRouter, ShardedStore, WorkerContext};
use sketch::estimators::SketchConfig;
use sketch::{QueryContext, RangeQuery, RangeStrategy};
use spatial_bench::probes::range_query_workload;

const BITS: u32 = 14;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_serve(c: &mut Criterion) {
    let data: Vec<HyperRect<2>> = SyntheticSpec::paper(5_000, BITS, 0.0, 5).generate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(88, 5),
        [BITS, BITS],
        RangeStrategy::Transform,
    );
    let qs = range_query_workload(9, 16, BITS);

    let mut group = c.benchmark_group("serve_range_qps");
    group.throughput(Throughput::Elements(1));

    // Unsharded floor: one sketch, one reused context.
    let mut oracle = rq.new_sketch();
    oracle.insert_slice(&data).unwrap();
    let mut octx = QueryContext::new();
    let mut qi = 0usize;
    group.bench_function("unsharded_direct", |b| {
        b.iter(|| {
            qi = (qi + 1) % qs.len();
            rq.estimate_with(&mut octx, &oracle, black_box(&qs[qi]))
                .unwrap()
                .value
        })
    });

    for shards in SHARD_COUNTS {
        let store = ShardedStore::like(&oracle, shards);
        for chunk in data.chunks(512) {
            store.insert_slice(chunk).unwrap();
        }
        let router = QueryRouter::new();

        // Warm path: cached epoch + cached merged view (steady state).
        let pool = ContextPool::new(1);
        let mut qi = 0usize;
        group.bench_function(format!("router_{shards}shards_warm"), |b| {
            b.iter(|| {
                qi = (qi + 1) % qs.len();
                pool.with(|ctx| router.estimate_range(&rq, &store, ctx, black_box(&qs[qi])))
                    .unwrap()
                    .value
            })
        });

        // Worst case: an epoch swap lands before every query, so the warm
        // worker's cached view re-merges each time (epoch-mismatch branch:
        // reset + re-fold into the already-allocated merge target — the
        // path a serving worker actually takes after an ingest; an empty
        // ingest batch publishes a content-identical new epoch).
        let mut ctx = WorkerContext::new();
        router
            .estimate_range(&rq, &store, &mut ctx, &qs[0])
            .unwrap();
        let mut qi = 0usize;
        group.bench_function(format!("router_{shards}shards_post_swap"), |b| {
            b.iter(|| {
                store.insert_slice(&[]).unwrap();
                qi = (qi + 1) % qs.len();
                router
                    .estimate_range(&rq, &store, &mut ctx, black_box(&qs[qi]))
                    .unwrap()
                    .value
            })
        });
    }
    group.finish();

    // Ingest through the store: staging-shard clone + epoch swap included.
    let mut group = c.benchmark_group("serve_ingest_swap");
    let batch: Vec<HyperRect<2>> = data[..512].to_vec();
    group.throughput(Throughput::Elements(batch.len() as u64));
    for shards in SHARD_COUNTS {
        group.bench_function(format!("insert512_{shards}shards"), |b| {
            let store = ShardedStore::like(&oracle, shards);
            b.iter(|| store.insert_slice(black_box(&batch)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);

//! The network front-end: a framed TCP protocol over the serving layer.
//!
//! ```text
//!   clients ──frames──▶ reactor threads ──jobs──▶ BatchQueue (bounded,
//!   (pipelined ids)     (non-blocking conns,          │  coalescing window)
//!        ▲               FrameDecoder,                │ drain ≤ max_batch
//!        │               write backpressure)          ▼
//!        └── reply frames ◀── completions ◀── workers ── ContextPool pass
//!            (out of order,     (conn, frame, slot)      QueryRouter
//!             matched by id)                             ShardedStore
//! ```
//!
//! Four pieces, one per submodule:
//!
//! * [`codec`] — the versioned little-endian frame format (12-byte header
//!   carrying the pipelining frame id) and the query/reply payload
//!   encodings. Estimates travel as f64 *bit patterns*, so the wire
//!   preserves the serving layer's bit-identity contract end to end.
//! * [`io`] — frame I/O shared by both sides: blocking `read_frame` /
//!   `write_frame` helpers with a single socket-error taxonomy
//!   (`Timeout` / `Disconnected`), and the incremental [`io::FrameDecoder`]
//!   the reactor resumes across partial reads.
//! * [`server`] — the reactor threads multiplexing every connection, the
//!   bounded batch queue with its cross-connection coalescing window
//!   (backpressure: full ⇒ per-query `Overloaded` shed), worker threads
//!   answering whole batches through single [`crate::ContextPool`]
//!   passes, `catch_unwind` crash containment, graceful drain.
//! * [`client`] — a blocking client with frame pipelining
//!   (`submit`/`collect` tickets), read/write timeouts and a reconnect
//!   helper; used by the differential suites, the `net_soak` CI binary
//!   and the `perf_probe --probe net` latency harness.
//!
//! No external dependencies: the whole layer is `std::net` + `std::io`
//! (no `unsafe`, no epoll binding — non-blocking sockets and short parks),
//! in keeping with the workspace's vendored/offline dependency policy.

pub mod client;
pub mod codec;
pub mod io;
pub mod server;

pub use client::{
    range_partial_query, range_query, stab_partial_query, stab_query, ClientConfig, SketchClient,
    Ticket,
};
pub use codec::{WireError, WireErrorCode, WireQuery, WireReply};
pub use server::{serve, ServeConfig, ServeStats, ServerHandle, SketchService};

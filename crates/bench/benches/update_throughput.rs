//! Bench: maintenance cost per inserted object for every summary in the
//! workspace — the paper's update-cost story (Section 4.1.5: sketch updates
//! are O(instances · d · log n); histograms pay O(cells spanned)).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use datagen::SyntheticSpec;
use geometry::HyperRect;
use histograms::{EulerHistogram, GeometricHistogram, GridSpec};
use rand::SeedableRng;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, BuildKernel};

const BITS: u32 = 14;

fn data() -> Vec<HyperRect<2>> {
    SyntheticSpec::paper(2_000, BITS, 0.0, 5).generate()
}

fn bench_updates(c: &mut Criterion) {
    let rects = data();
    let mean_extent = 3.0
        * rects
            .iter()
            .map(|r| (r.range(0).length() + r.range(1).length()) as f64 / 2.0)
            .sum::<f64>()
        / rects.len() as f64;
    let max_level = plan::adaptive_max_level(mean_extent, BITS + 2);

    let mut group = c.benchmark_group("insert_per_object");
    group.throughput(Throughput::Elements(rects.len() as u64));

    for instances in [100usize, 500] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let config = SketchConfig::new(instances / 5, 5).with_max_level(max_level);
        let join =
            SpatialJoin::<2>::new(&mut rng, config, [BITS, BITS], EndpointStrategy::Transform);
        // Serial inserts per blocked kernel (the scalar oracle lives in
        // perf_probe's sweep; here the bit-sliced block widths race).
        for kernel in [
            BuildKernel::Batched,
            BuildKernel::Wide,
            BuildKernel::Wide512,
        ] {
            group.bench_function(format!("sketch_{instances}inst_serial_{kernel:?}"), |b| {
                b.iter_batched(
                    || join.new_sketch_r().with_kernel(kernel),
                    |mut sk| {
                        for r in &rects {
                            sk.insert(black_box(r)).unwrap();
                        }
                        sk
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        group.bench_function(format!("sketch_{instances}inst_parallel8"), |b| {
            b.iter_batched(
                || join.new_sketch_r(),
                |mut sk| {
                    par_insert_batch(&mut sk, black_box(&rects), 8).unwrap();
                    sk
                },
                BatchSize::LargeInput,
            )
        });
    }

    for level in [3u32, 6] {
        let spec = GridSpec::new(BITS, level);
        group.bench_function(format!("euler_histogram_L{level}"), |b| {
            b.iter_batched(
                || EulerHistogram::new(spec),
                |mut eh| {
                    for r in &rects {
                        eh.insert(black_box(r));
                    }
                    eh
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("geometric_histogram_L{level}"), |b| {
            b.iter_batched(
                || GeometricHistogram::new(spec),
                |mut gh| {
                    for r in &rects {
                        gh.insert(black_box(r));
                    }
                    gh
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);

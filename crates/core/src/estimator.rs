//! Generic product estimators over pairs of sketch sets.
//!
//! Every join-style estimator in the paper has the same shape: an atomic
//! estimate `Z = Σ_t c_t · X_{w_t} · Y_{v_t}` (a signed, weighted sum of
//! products of one atomic sketch from each side), boosted by mean-then-median
//! over the instance grid. The estimators differ only in the *term lists* and
//! the endpoint policies of the two sides:
//!
//! * interval join (Theorem 1): `Z = (X_I Y_E + X_E Y_I) / 2`;
//! * rectangle join (Theorem 2): `Z = (X_II Y_EE + X_IE Y_EI + X_EI Y_IE +
//!   X_EE Y_II) / 4`;
//! * d-dimensional join (Theorem 3): `Z = 2^{-d} Σ_w X_w Y_w̄`;
//! * ε-join (Lemma 8): `Z = X_E Y_I` over point covers and cube covers;
//! * extended join (Appendix B.1), Appendix-C common-endpoint join, and
//!   containment joins — all with their own per-dimension factor lists.
//!
//! [`PairTerms`] builds the word-level term list from a *per-dimension*
//! factor list by cartesian expansion, which is exactly how the paper derives
//! its higher-dimensional estimators from per-dimension counting arguments.
//! Evaluating the expanded terms over the instance grid is delegated to the
//! [`crate::query`] kernels (scalar oracle vs batched block-evaluated).

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::{word_name, Comp, Word};
use crate::error::{Result, SketchError};
use crate::query::QueryContext;
use crate::schema::SketchSchema;
use std::sync::Arc;

/// One per-dimension factor: R-side component × S-side component × weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimTerm {
    /// Component applied to the `R` relation in this dimension.
    pub r: Comp,
    /// Component applied to the `S` relation in this dimension.
    pub s: Comp,
    /// Signed weight of this factor.
    pub coeff: f64,
}

impl DimTerm {
    /// Convenience constructor.
    pub fn new(r: Comp, s: Comp, coeff: f64) -> Self {
        Self { r, s, coeff }
    }
}

/// A word-level term: indices into the R-side and S-side word lists plus a
/// signed coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// Index into the R-side word list.
    pub r_word: usize,
    /// Index into the S-side word list.
    pub s_word: usize,
    /// Signed coefficient.
    pub coeff: f64,
}

/// The expanded estimator shape: word lists for both sides and the terms.
#[derive(Debug, Clone)]
pub struct PairTerms<const D: usize> {
    r_words: Arc<Vec<Word<D>>>,
    s_words: Arc<Vec<Word<D>>>,
    terms: Vec<Term>,
}

impl<const D: usize> PairTerms<D> {
    /// Expands per-dimension factor lists into word-level terms by cartesian
    /// product: choosing factor `t_i` in each dimension contributes the term
    /// `(Π c_{t_i}) · X_{(r_{t_1},..,r_{t_D})} · Y_{(s_{t_1},..,s_{t_D})}`.
    pub fn from_dim_terms(per_dim: &[Vec<DimTerm>; D]) -> Self {
        for dims in per_dim.iter() {
            assert!(
                !dims.is_empty(),
                "every dimension needs at least one factor"
            );
        }
        let mut r_words: Vec<Word<D>> = Vec::new();
        let mut s_words: Vec<Word<D>> = Vec::new();
        let mut terms = Vec::new();

        let intern = |words: &mut Vec<Word<D>>, w: Word<D>| -> usize {
            match words.iter().position(|x| *x == w) {
                Some(i) => i,
                None => {
                    words.push(w);
                    words.len() - 1
                }
            }
        };

        // Odometer over factor choices.
        let mut choice = [0usize; D];
        loop {
            let mut rw = [Comp::Interval; D];
            let mut sw = [Comp::Interval; D];
            let mut coeff = 1.0;
            for dim in 0..D {
                let t = per_dim[dim][choice[dim]];
                rw[dim] = t.r;
                sw[dim] = t.s;
                coeff *= t.coeff;
            }
            let r_idx = intern(&mut r_words, rw);
            let s_idx = intern(&mut s_words, sw);
            terms.push(Term {
                r_word: r_idx,
                s_word: s_idx,
                coeff,
            });

            // Advance the odometer.
            let mut dim = 0;
            loop {
                if dim == D {
                    return Self {
                        r_words: Arc::new(r_words),
                        s_words: Arc::new(s_words),
                        terms,
                    };
                }
                choice[dim] += 1;
                if choice[dim] < per_dim[dim].len() {
                    break;
                }
                choice[dim] = 0;
                dim += 1;
            }
        }
    }

    /// The R-side word list.
    pub fn r_words(&self) -> &Arc<Vec<Word<D>>> {
        &self.r_words
    }

    /// The S-side word list.
    pub fn s_words(&self) -> &Arc<Vec<Word<D>>> {
        &self.s_words
    }

    /// The word-level terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Human-readable rendering, e.g. `0.5·X_I·Y_E + 0.5·X_E·Y_I`.
    pub fn describe(&self) -> String {
        self.terms
            .iter()
            .map(|t| {
                format!(
                    "{:+}·X_{}·Y_{}",
                    t.coeff,
                    word_name(&self.r_words[t.r_word]),
                    word_name(&self.s_words[t.s_word])
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A ready-to-use two-relation estimator: shared schema, expanded terms and
/// the endpoint policies of both sides.
#[derive(Debug, Clone)]
pub struct PairEstimator<const D: usize> {
    schema: Arc<SketchSchema<D>>,
    terms: PairTerms<D>,
    r_policy: EndpointPolicy,
    s_policy: EndpointPolicy,
}

impl<const D: usize> PairEstimator<D> {
    /// Assembles an estimator from a schema, terms and policies.
    pub fn new(
        schema: Arc<SketchSchema<D>>,
        terms: PairTerms<D>,
        r_policy: EndpointPolicy,
        s_policy: EndpointPolicy,
    ) -> Self {
        Self {
            schema,
            terms,
            r_policy,
            s_policy,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<SketchSchema<D>> {
        &self.schema
    }

    /// The expanded terms.
    pub fn terms(&self) -> &PairTerms<D> {
        &self.terms
    }

    /// Creates an empty sketch for the `R` side.
    pub fn new_sketch_r(&self) -> SketchSet<D> {
        SketchSet::new(
            Arc::clone(&self.schema),
            Arc::clone(&self.terms.r_words),
            self.r_policy,
        )
    }

    /// Creates an empty sketch for the `S` side.
    pub fn new_sketch_s(&self) -> SketchSet<D> {
        SketchSet::new(
            Arc::clone(&self.schema),
            Arc::clone(&self.terms.s_words),
            self.s_policy,
        )
    }

    /// Checks that both sketches were drawn from this estimator's schema and
    /// carry its word sets.
    pub(crate) fn check_sketches(&self, r: &SketchSet<D>, s: &SketchSet<D>) -> Result<()> {
        if r.schema().id() != self.schema.id() || s.schema().id() != self.schema.id() {
            return Err(SketchError::SchemaMismatch);
        }
        if !Arc::ptr_eq(r.words(), &self.terms.r_words) && **r.words() != *self.terms.r_words {
            return Err(SketchError::WordMismatch);
        }
        if !Arc::ptr_eq(s.words(), &self.terms.s_words) && **s.words() != *self.terms.s_words {
            return Err(SketchError::WordMismatch);
        }
        Ok(())
    }

    /// Combines two sketches into the boosted estimate.
    ///
    /// Errors if the sketches come from a different schema or carry the
    /// wrong word sets (e.g. were built by a different estimator).
    ///
    /// Convenience form of [`PairEstimator::estimate_with`] that builds a
    /// throwaway [`QueryContext`]; serving loops should hold one context and
    /// reuse it across calls.
    pub fn estimate(&self, r: &SketchSet<D>, s: &SketchSet<D>) -> Result<Estimate> {
        self.estimate_with(&mut QueryContext::new(), r, s)
    }

    /// Combines two sketches into the boosted estimate using the caller's
    /// [`QueryContext`] (kernel choice + reused scratch: no allocation
    /// beyond the returned [`Estimate`] once the context has warmed up).
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        r: &SketchSet<D>,
        s: &SketchSet<D>,
    ) -> Result<Estimate> {
        self.check_sketches(r, s)?;
        Ok(ctx.pair_estimate(&self.terms.terms, r, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::ie_words;

    #[test]
    fn expansion_of_plain_join_1d() {
        let per_dim = [vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
            DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
        ]];
        let t = PairTerms::<1>::from_dim_terms(&per_dim);
        assert_eq!(t.r_words().len(), 2);
        assert_eq!(t.s_words().len(), 2);
        assert_eq!(t.terms().len(), 2);
        assert!(t.terms().iter().all(|x| (x.coeff - 0.5).abs() < 1e-12));
        assert_eq!(t.describe(), "+0.5·X_I·Y_E +0.5·X_E·Y_I");
    }

    #[test]
    fn expansion_of_plain_join_2d_matches_lemma6() {
        let dim = vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
            DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
        ];
        let t = PairTerms::<2>::from_dim_terms(&[dim.clone(), dim]);
        // Z = (X_II Y_EE + X_IE Y_EI + X_EI Y_IE + X_EE Y_II) / 4
        assert_eq!(t.terms().len(), 4);
        assert!(t.terms().iter().all(|x| (x.coeff - 0.25).abs() < 1e-12));
        // Every term pairs a word with its complement.
        for term in t.terms() {
            let rw = t.r_words()[term.r_word];
            let sw = t.s_words()[term.s_word];
            assert_eq!(crate::comp::complement(&rw), sw);
        }
        // Words are exactly {I,E}^2 on both sides.
        let mut names: Vec<String> = t.r_words().iter().map(word_name).collect();
        names.sort();
        assert_eq!(names, vec!["EE", "EI", "IE", "II"]);
        let expected: Vec<Word<2>> = ie_words::<2>();
        assert_eq!(t.r_words().len(), expected.len());
    }

    #[test]
    fn expansion_with_signs() {
        // A 1-d Appendix-C-style list with negative factors.
        let per_dim = [vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
            DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
            DimTerm::new(Comp::LowerLeaf, Comp::UpperLeaf, -1.0),
            DimTerm::new(Comp::UpperLeaf, Comp::LowerLeaf, -1.0),
            DimTerm::new(Comp::LowerLeaf, Comp::LowerLeaf, -0.5),
            DimTerm::new(Comp::UpperLeaf, Comp::UpperLeaf, -0.5),
        ]];
        let t = PairTerms::<1>::from_dim_terms(&per_dim);
        assert_eq!(t.terms().len(), 6);
        // R-side words dedup to {I, E, L-leaf, U-leaf}.
        assert_eq!(t.r_words().len(), 4);
        let sum: f64 = t.terms().iter().map(|x| x.coeff).sum();
        assert!((sum - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn word_interning_dedups() {
        // Two factors sharing the same R comp must share an R word.
        let per_dim = [vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 1.0),
            DimTerm::new(Comp::Interval, Comp::LowerPoint, 1.0),
        ]];
        let t = PairTerms::<1>::from_dim_terms(&per_dim);
        assert_eq!(t.r_words().len(), 1);
        assert_eq!(t.s_words().len(), 2);
    }

    #[test]
    fn three_d_expansion_size() {
        let dim = vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
            DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
        ];
        let t = PairTerms::<3>::from_dim_terms(&[dim.clone(), dim.clone(), dim]);
        assert_eq!(t.terms().len(), 8);
        assert_eq!(t.r_words().len(), 8);
        assert!(t.terms().iter().all(|x| (x.coeff - 0.125).abs() < 1e-12));
    }
}

//! Serialization half: [`Serialize`], [`Serializer`], [`to_value`].

use crate::value::Value;
use std::fmt;

/// Error raised while driving a [`Serializer`] (serde's `ser::Error`).
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Builds an error carrying a custom message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// Concrete serialization error used by [`ValueSerializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError(String);

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// A sink for one [`Value`] tree. Real serde threads each primitive through
/// a `serialize_*` method; this stand-in asks types to build the [`Value`]
/// themselves (via [`to_value`]) and hands the finished tree over in one
/// call, which keeps generic `fn serialize<S: Serializer>` signatures
/// source-compatible.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type (must support `custom`).
    type Error: Error;

    /// Consumes the finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can serialize itself through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The canonical serializer: materializes the [`Value`] tree.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, value: Value) -> Result<Value, SerError> {
        Ok(value)
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, SerError> {
    value.serialize(ValueSerializer)
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(u64::from(*self)))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = i64::from(*self);
                let value = if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) };
                serializer.serialize_value(value)
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64);
ser_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::UInt(*self as u64))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as i64).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

fn seq_to_value<'a, T: Serialize + 'a, S: Serializer>(
    items: impl Iterator<Item = &'a T>,
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item).map_err(S::Error::custom)?);
    }
    serializer.serialize_value(Value::Seq(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self.iter(), serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let a = to_value(&self.0).map_err(S::Error::custom)?;
        let b = to_value(&self.1).map_err(S::Error::custom)?;
        serializer.serialize_value(Value::Seq(vec![a, b]))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let a = to_value(&self.0).map_err(S::Error::custom)?;
        let b = to_value(&self.1).map_err(S::Error::custom)?;
        let c = to_value(&self.2).map_err(S::Error::custom)?;
        serializer.serialize_value(Value::Seq(vec![a, b, c]))
    }
}
